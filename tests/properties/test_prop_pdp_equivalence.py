"""Differential tests: indexed+cached PDP ≡ reference linear-scan PDP.

The fast path (target index + decision cache, `repro.xacml.index` /
`repro.xacml.pdp`) must be *decision- and obligation-identical* to the
seed linear scan for every request, under every built-in policy
combining algorithm, and across policy load/update/remove events.  Both
PDPs share one :class:`PolicyStore`, so any divergence is attributable
to the fast path itself.

Two request-stream shapes are exercised: hypothesis-generated random
policies/requests (including non-indexable regex targets, multi-valued
attributes and environment conditions), and the Table 3 workload of
``repro.workload.generator`` replayed through ``zipf_sequence`` — the
distribution-controlled load the benchmarks use.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workload.generator import WorkloadGenerator
from repro.workload.zipf import zipf_sequence
from repro.xacml.attributes import (
    SUBJECT_ID,
    Attribute,
    AttributeCategory,
    AttributeValue,
)
from repro.xacml.functions import (
    INTEGER_GREATER_THAN,
    INTEGER_LESS_THAN,
    STRING_REGEXP_MATCH,
)
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Condition, Match, Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect, Obligation
from repro.xacml.store import PolicyStore

COMBINING = ("first-applicable", "permit-overrides", "deny-overrides")

SUBJECTS = ("alice", "bob", "carol", "dave")
RESOURCES = ("weather0", "weather1", "gps0")
ACTIONS = ("read", "write")


def make_pdp_pair(combining="first-applicable", cache_size=64):
    """A fast PDP and a reference PDP over one shared store."""
    store = PolicyStore()
    fast = PolicyDecisionPoint(store, combining, use_index=True, cache_size=cache_size)
    reference = PolicyDecisionPoint.reference(store, combining)
    return store, fast, reference


def assert_equivalent(fast, reference, request):
    expected = reference.evaluate(request)
    actual = fast.evaluate(request)
    assert actual.decision is expected.decision
    assert actual.policy_id == expected.policy_id
    assert actual.obligations == expected.obligations
    assert actual.status_message == expected.status_message


# -- hypothesis strategies ---------------------------------------------------------

def _target(spec):
    """Build a Target from (subject_spec, resource, action).

    ``subject_spec`` is None (any), a plain value, a tuple of values
    (multi-alternative — exercises multi-key index buckets), or
    ``("regex", pattern)`` (non-indexable — exercises the wildcard
    fallback).
    """
    subject_spec, resource, action = spec
    if subject_spec is None:
        subjects = ()
    elif isinstance(subject_spec, tuple) and subject_spec[0] == "regex":
        subjects = [[
            Match(
                AttributeCategory.SUBJECT,
                SUBJECT_ID,
                AttributeValue.string(subject_spec[1]),
                function_id=STRING_REGEXP_MATCH,
            )
        ]]
    elif isinstance(subject_spec, tuple):
        subjects = [
            [Match(AttributeCategory.SUBJECT, SUBJECT_ID, AttributeValue.string(s))]
            for s in subject_spec
        ]
    else:
        subjects = [[
            Match(
                AttributeCategory.SUBJECT,
                SUBJECT_ID,
                AttributeValue.string(subject_spec),
            )
        ]]
    base = Target.for_ids(resource=resource, action=action)
    base.subjects = [list(a) for a in subjects]
    return base


subject_specs = st.one_of(
    st.none(),
    st.sampled_from(SUBJECTS),
    st.tuples(st.sampled_from(SUBJECTS), st.sampled_from(SUBJECTS)),
    st.tuples(st.just("regex"), st.sampled_from(("ali.*", "(bob|carol)", "z.*"))),
)

target_specs = st.tuples(
    subject_specs,
    st.one_of(st.none(), st.sampled_from(RESOURCES)),
    st.one_of(st.none(), st.sampled_from(ACTIONS)),
)

conditions = st.one_of(
    st.none(),
    st.builds(
        lambda fn, threshold: Condition(
            AttributeCategory.ENVIRONMENT,
            "clearance",
            fn,
            AttributeValue.integer(threshold),
        ),
        st.sampled_from((INTEGER_GREATER_THAN, INTEGER_LESS_THAN)),
        st.integers(min_value=0, max_value=5),
    ),
)

rule_specs = st.tuples(
    st.sampled_from((Effect.PERMIT, Effect.DENY)),
    st.one_of(st.none(), st.sampled_from(SUBJECTS)),
    conditions,
)

policy_specs = st.tuples(
    target_specs,
    st.lists(rule_specs, min_size=1, max_size=3),
    st.integers(min_value=0, max_value=2),  # obligation count
    st.sampled_from(("first-applicable", "permit-overrides", "deny-overrides")),
)


def build_policy(policy_id, spec):
    target_spec, rules_spec, n_obligations, rule_combining = spec
    rules = [
        Rule(
            f"{policy_id}:r{i}",
            effect,
            target=Target.for_ids(subject=rule_subject) if rule_subject else None,
            condition=condition,
        )
        for i, (effect, rule_subject, condition) in enumerate(rules_spec)
    ]
    obligations = [
        Obligation(
            f"{policy_id}:ob{i}",
            fulfill_on=Effect.PERMIT if i % 2 == 0 else Effect.DENY,
        )
        for i in range(n_obligations)
    ]
    return Policy(
        policy_id,
        target=_target(target_spec),
        rules=rules,
        rule_combining=rule_combining,
        obligations=obligations,
    )


@st.composite
def requests(draw):
    request = Request.simple(
        draw(st.sampled_from(SUBJECTS + ("eve",))),
        draw(st.sampled_from(RESOURCES + ("other",))),
        draw(st.sampled_from(ACTIONS)),
        environment={"clearance": draw(st.integers(min_value=0, max_value=5))},
    )
    extra_subject = draw(st.one_of(st.none(), st.sampled_from(SUBJECTS)))
    if extra_subject is not None:
        # Multi-valued subject-id: the index must union the buckets.
        request.add(
            Attribute(
                AttributeCategory.SUBJECT,
                SUBJECT_ID,
                AttributeValue.string(extra_subject),
            )
        )
    return request


mutations = st.lists(
    st.tuples(
        st.sampled_from(("update", "remove", "load")),
        st.integers(min_value=0, max_value=9),
        policy_specs,
    ),
    max_size=4,
)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        specs=st.lists(policy_specs, min_size=0, max_size=8),
        request_list=st.lists(requests(), min_size=1, max_size=8),
        combining=st.sampled_from(COMBINING),
        ops=mutations,
    )
    def test_indexed_cached_pdp_matches_reference(
        self, specs, request_list, combining, ops
    ):
        store, fast, reference = make_pdp_pair(combining, cache_size=8)
        for i, spec in enumerate(specs):
            store.load(build_policy(f"p{i}", spec))

        # Evaluate everything twice so the second pass is served from the
        # decision cache — cached responses must stay equivalent too.
        for request in request_list + request_list:
            assert_equivalent(fast, reference, request)

        # Mutate the shared store (update/remove/load), then re-check:
        # invalidation must keep the cached path equivalent.
        next_id = len(specs)
        for kind, index, spec in ops:
            loaded = [p.policy_id for p in store.policies()]
            if kind == "load":
                store.load(build_policy(f"p{next_id}", spec))
                next_id += 1
            elif not loaded:
                continue
            elif kind == "update":
                store.update(build_policy(loaded[index % len(loaded)], spec))
            else:
                store.remove(loaded[index % len(loaded)])
        for request in request_list + request_list:
            assert_equivalent(fast, reference, request)


class TestWorkloadEquivalence:
    """The Table 3 generator's policies replayed as a Zipf request stream."""

    @pytest.fixture(scope="class")
    def workload(self):
        generator = WorkloadGenerator(seed=7)
        generator.parameters = generator.parameters._replace(
            n_requests=60, n_policies=40
        )
        return generator.generate()

    @pytest.mark.parametrize("combining", COMBINING)
    def test_zipf_stream_equivalence(self, workload, combining):
        store, fast, reference = make_pdp_pair(combining, cache_size=32)
        seen = set()
        for item in workload:
            if item.policy.policy_id not in seen:
                seen.add(item.policy.policy_id)
                store.load(item.policy)
        stream = zipf_sequence(
            [item.request for item in workload], length=200, max_rank=50, seed=11
        )
        for request in stream:
            assert_equivalent(fast, reference, request)
        # The Zipf skew must actually produce cache hits, or this test
        # is not exercising the cached path at all.
        assert fast.cache_hits > 0

    def test_equivalence_through_update_and_remove(self, workload):
        store, fast, reference = make_pdp_pair(cache_size=32)
        unique = []
        seen = set()
        for item in workload:
            if item.policy.policy_id not in seen:
                seen.add(item.policy.policy_id)
                unique.append(item)
                store.load(item.policy)
        stream = zipf_sequence(
            [item.request for item in workload], length=120, max_rank=50, seed=13
        )
        for request in stream:
            assert_equivalent(fast, reference, request)
        # Remove every third policy, re-target every fourth to a
        # different subject, then replay the same stream.
        for i, item in enumerate(unique):
            if i % 3 == 0:
                store.remove(item.policy.policy_id)
            elif i % 4 == 0:
                replacement = Policy(
                    item.policy.policy_id,
                    target=Target.for_ids(subject="nobody", resource=item.stream),
                    rules=list(item.policy.rules),
                    obligations=item.policy.obligations,
                )
                store.update(replacement)
        for request in stream:
            assert_equivalent(fast, reference, request)
