"""Differential tests: compiled/batched stream execution ≡ interpreted.

Mirrors ``test_prop_pdp_equivalence.py`` for the stream side.  Three
layers must be decision- and output-identical:

- **expression layer**: the schema-compiled closures of
  :mod:`repro.expr.compile` against the AST interpreter of
  :mod:`repro.expr.evaluate`, over random schemas, random type-correct
  conditions, and random tuples;
- **pipeline layer**: ``QueryGraphInstance.process_many`` (stage-by-
  stage batch execution) against per-tuple ``process``, and against a
  ``compiled=False`` reference instance, over random operator chains —
  including stateful window aggregation, where batching must not
  disturb emission points;
- **engine layer**: a default (compiled) :class:`StreamEngine` fed via
  ``push_batch`` under a random batch partition against a
  ``StreamEngine.reference()`` fed tuple-at-a-time, across multi-query
  fan-out, withdraw-mid-batch and empty-batch edges.
"""

from hypothesis import given, settings, strategies as st

from repro.errors import UnknownHandleError
from repro.expr.ast import (
    AndExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.compile import compile_batch, compile_predicate
from repro.expr.evaluate import evaluate
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import make_tuple

# -- expression-layer strategies ---------------------------------------------------

FIELD_POOL = (
    ("SamplingTime", DataType.TIMESTAMP),
    ("temp", DataType.DOUBLE),
    ("Count", DataType.INT),
    ("x1", DataType.DOUBLE),
    ("tag", DataType.STRING),
    ("device_ID", DataType.STRING),
)

STRINGS = ("a", "b", "weather", "GPS", "")

schemas = st.lists(
    st.sampled_from(FIELD_POOL), min_size=1, max_size=6, unique_by=lambda f: f[0]
).map(lambda fields: Schema("rnd", [Field(n, d) for n, d in fields]))

NUMERIC_OPS = tuple(Operator)
EQUALITY_OPS = (Operator.EQ, Operator.NE)

numbers = st.one_of(
    st.integers(min_value=-50, max_value=50),
    st.floats(min_value=-50, max_value=50, allow_nan=False, width=32),
)


def leaves_for(schema):
    """Strategy for type-correct leaves over *schema*'s fields."""
    def leaf(field):
        if field.dtype is DataType.STRING:
            return st.builds(
                SimpleExpression,
                st.just(field.name),
                st.sampled_from(EQUALITY_OPS),
                st.sampled_from(STRINGS),
            )
        return st.builds(
            SimpleExpression,
            st.just(field.name),
            st.sampled_from(NUMERIC_OPS),
            numbers,
        )

    return st.one_of([leaf(field) for field in schema])


def expressions_for(schema):
    return st.recursive(
        st.one_of(st.just(TrueExpression()), leaves_for(schema)),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: AndExpression(tuple(cs))
            ),
            st.lists(children, min_size=2, max_size=3).map(
                lambda cs: OrExpression(tuple(cs))
            ),
            children.map(NotExpression),
        ),
        max_leaves=8,
    )


def tuples_for(schema, count):
    def value(field):
        if field.dtype is DataType.STRING:
            return st.sampled_from(STRINGS)
        if field.dtype is DataType.INT:
            return st.integers(min_value=-50, max_value=50)
        return numbers

    row = st.fixed_dictionaries({field.name: value(field) for field in schema})
    return st.lists(row, min_size=0, max_size=count).map(
        lambda rows: [make_tuple(schema, row) for row in rows]
    )


@st.composite
def expression_cases(draw):
    schema = draw(schemas)
    expression = draw(expressions_for(schema))
    batch = draw(tuples_for(schema, 12))
    return schema, expression, batch


class TestExpressionEquivalence:
    @settings(max_examples=200, deadline=None)
    @given(case=expression_cases())
    def test_compiled_matches_interpreter(self, case):
        schema, expression, batch = case
        predicate = compile_predicate(expression, schema)
        mask = compile_batch(expression, schema)
        expected = [evaluate(expression, tup) for tup in batch]
        assert [predicate(tup) for tup in batch] == expected
        assert mask(batch) == expected


# -- pipeline / engine strategies --------------------------------------------------

PIPE_SCHEMA = Schema(
    "s",
    [
        Field("t", DataType.TIMESTAMP),
        Field("x", DataType.DOUBLE),
        Field("y", DataType.DOUBLE),
        Field("tag", DataType.STRING),
    ],
)

pipe_conditions = st.sampled_from(
    [
        None,
        "x > 0",
        "x <= 20 AND y > -30",
        "tag = 'a' OR x > 25",
        "NOT (x > 10)",
        "TRUE",
    ]
)
pipe_maps = st.sampled_from([None, ("t", "x"), ("x",), ("t", "x", "y")])
pipe_windows = st.sampled_from(
    [None, (WindowType.TUPLE, 3, 2), (WindowType.TUPLE, 5, 5), (WindowType.TIME, 4, 2)]
)


def build_graph(condition, map_attrs, window):
    graph = QueryGraph("s")
    if condition:
        graph.append(FilterOperator(condition))
    if map_attrs:
        graph.append(MapOperator(list(map_attrs)))
    if window:
        window_type, size, step = window
        graph.append(
            AggregateOperator(
                WindowSpec(window_type, size, step),
                [AggregationSpec.parse("x:sum"), AggregationSpec.parse("x:count")],
                time_attribute="t" if window_type is WindowType.TIME else None,
            )
        )
    return graph


def records(values):
    return [
        {"t": float(i), "x": float(v), "y": float(-v), "tag": "a" if v % 2 else "b"}
        for i, v in enumerate(values)
    ]


def partition(items, cut_points):
    """Split *items* into batches at *cut_points* (may yield empty batches)."""
    cuts = sorted(set(cut_points))
    batches, last = [], 0
    for cut in cuts:
        batches.append(items[last:cut])
        last = cut
    batches.append(items[last:])
    return batches


class TestPipelineEquivalence:
    @settings(max_examples=150, deadline=None)
    @given(
        condition=pipe_conditions,
        map_attrs=pipe_maps,
        window=pipe_windows,
        values=st.lists(st.integers(min_value=-40, max_value=40), max_size=40),
        cuts=st.lists(st.integers(min_value=0, max_value=40), max_size=4),
    )
    def test_batched_matches_per_tuple_and_reference(
        self, condition, map_attrs, window, values, cuts
    ):
        if map_attrs and window:
            if "x" not in map_attrs:
                map_attrs = map_attrs + ("x",)
            if window[0] is WindowType.TIME and "t" not in map_attrs:
                map_attrs = map_attrs + ("t",)
        graph = build_graph(condition, map_attrs, window)
        tuples = [make_tuple(PIPE_SCHEMA, r) for r in records(values)]

        single = graph.instantiate(PIPE_SCHEMA)
        expected = []
        for tup in tuples:
            expected.extend(single.process(tup))

        reference = graph.instantiate(PIPE_SCHEMA, compiled=False)
        interpreted = []
        for tup in tuples:
            interpreted.extend(reference.process(tup))

        batched = graph.instantiate(PIPE_SCHEMA)
        got = []
        for batch in partition(tuples, cuts):
            got.extend(batched.process_many(batch))

        as_values = lambda out: [t.values for t in out]
        assert as_values(got) == as_values(expected) == as_values(interpreted)


class TestEngineEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(
        values=st.lists(st.integers(min_value=-40, max_value=40), max_size=30),
        cuts=st.lists(st.integers(min_value=0, max_value=30), max_size=3),
        fanout=st.integers(min_value=1, max_value=5),
    )
    def test_compiled_batched_engine_matches_reference(self, values, cuts, fanout):
        recs = records(values)
        outputs = {}
        for mode in ("reference", "compiled"):
            engine = (
                StreamEngine.reference() if mode == "reference" else StreamEngine()
            )
            engine.register_input_stream("s", PIPE_SCHEMA)
            handles = [
                engine.register_query(
                    QueryGraph("s").append(FilterOperator(f"x > {i * 5}"))
                )
                for i in range(fanout)
            ]
            handles.append(
                engine.register_query(
                    build_graph("x > -20", ("t", "x"), (WindowType.TUPLE, 3, 2))
                )
            )
            if mode == "reference":
                for record in recs:
                    engine.push("s", record)
            else:
                for batch in partition(recs, cuts):
                    engine.push_batch("s", batch)
            outputs[mode] = [
                [t.values for t in engine.read(handle)] for handle in handles
            ]
        assert outputs["compiled"] == outputs["reference"]


class TestBatchEdges:
    def make_engine(self):
        engine = StreamEngine()
        engine.register_input_stream("s", PIPE_SCHEMA)
        return engine

    def test_empty_batch_through_pipeline(self):
        instance = build_graph("x > 0", ("t", "x"), (WindowType.TUPLE, 2, 1)).instantiate(
            PIPE_SCHEMA
        )
        assert instance.process_many([]) == []

    def test_empty_batch_through_engine(self):
        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        assert engine.push_batch("s", []) == 0
        assert engine.read(handle) == []

    def test_withdraw_mid_batch_matches_single_appends_with_chain(self):
        """A stateful chain withdrawn mid-batch stops at the withdrawal
        point with identical partial output to per-tuple dispatch."""
        results = []
        for mode in ("single", "batch"):
            engine = self.make_engine()
            source = engine.catalog.get("s")
            victim_box = {}

            def withdraw_on_marker(tup, engine=engine, victim_box=victim_box):
                if tup["x"] == 99.0:
                    engine.withdraw(victim_box["handle"])

            source.add_listener(withdraw_on_marker)
            victim = engine.register_query(
                build_graph("x > 0", None, (WindowType.TUPLE, 2, 1))
            )
            victim_box["handle"] = victim
            subscription = engine.subscribe(victim)
            recs = records([5, 7, 99, 11, 13])
            recs[2]["x"] = 99.0
            if mode == "single":
                for record in recs:
                    engine.push("s", record)
            else:
                engine.push_batch("s", recs)
            results.append([t.values for t in subscription.drain()])
        single, batched = results
        assert single == batched

    def sibling_withdrawal_run(self, push):
        """Drive a run where query 1's output dispatch withdraws query 2;
        *push* feeds the engine; returns the victim's drained output."""
        engine = self.make_engine()
        victim_box = {}

        first = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))

        def withdraw_victim(batch, engine=engine, victim_box=victim_box):
            handle = victim_box.pop("handle", None)
            if handle is not None:
                engine.withdraw(handle)

        # first's OUTPUT listener withdraws the victim as soon as first
        # emits — i.e. from within the source stream's batch phase.
        engine.lookup(first).output.add_batch_listener(withdraw_victim)

        victim = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        victim_box["handle"] = victim
        subscription = engine.subscribe(victim)

        push(engine)
        engine.push_batch("s", records([4, 5]))  # must not crash

        try:
            engine.read(victim)
            assert False, "withdrawn handle must not resolve"
        except UnknownHandleError:
            pass
        return [t["x"] for t in subscription.drain()]

    def test_withdraw_from_sibling_query_dispatch(self):
        """A query withdrawn during another query's batch dispatch emits
        nothing further (its guard-equivalent), exactly as under single
        appends, and nothing crashes on its closed output."""
        recs = records([1, 2, 3])
        batched = self.sibling_withdrawal_run(
            lambda engine: engine.push_batch("s", recs)
        )
        single = self.sibling_withdrawal_run(
            lambda engine: [engine.push("s", r) for r in recs]
        )
        assert batched == single == []

    def test_push_and_singleton_push_batch_identical(self):
        """push(t) and push_batch([t]) must be output-identical even when
        a batch listener withdraws a query mid-dispatch."""
        recs = records([7])
        assert self.sibling_withdrawal_run(
            lambda engine: engine.push("s", recs[0])
        ) == self.sibling_withdrawal_run(
            lambda engine: engine.push_batch("s", [recs[0]])
        )
