"""Property-based tests for windows, merging and the attack arithmetic."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.attack import reconstruct_from_windows
from repro.core.merge import MergeOptions, merge_query_graphs
from repro.errors import MergeError
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import DataType, Field, Schema
from repro.streams.streamsql.generator import generate_streamsql
from repro.streams.streamsql.parser import parse_streamsql
from repro.streams.tuples import make_tuple

SCHEMA = Schema(
    "s",
    [
        Field("t", DataType.TIMESTAMP),
        Field("x", DataType.DOUBLE),
        Field("y", DataType.DOUBLE),
    ],
)


def run_graph(graph, values):
    instance = graph.instantiate(SCHEMA)
    outputs = []
    for index, value in enumerate(values):
        tup = make_tuple(SCHEMA, {"t": float(index), "x": value, "y": -value})
        outputs.extend(instance.process(tup))
    return outputs


class TestWindowSemantics:
    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=60),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=200, deadline=None)
    def test_tuple_windows_match_oracle(self, values, size, step):
        graph = QueryGraph("s").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size, step),
                [AggregationSpec.parse("x:sum")],
            )
        )
        outputs = [t["sumx"] for t in run_graph(graph, values)]
        expected = []
        k = 0
        while k * step + size <= len(values):
            expected.append(float(sum(values[k * step: k * step + size])))
            k += 1
        assert outputs == expected

    @given(
        st.lists(st.integers(min_value=-100, max_value=100), min_size=0, max_size=60),
        st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_emission_count(self, values, size):
        graph = QueryGraph("s").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size, 1),
                [AggregationSpec.parse("x:count")],
            )
        )
        outputs = run_graph(graph, values)
        assert len(outputs) == max(0, len(values) - size + 1)
        assert all(t["countx"] == size for t in outputs)


class TestAttackProperty:
    @given(
        st.lists(st.integers(min_value=-50, max_value=50), min_size=10, max_size=80),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=150, deadline=None)
    def test_reconstruction_exact(self, values, base_size, step):
        """Sum windows of sizes N..N+M with step M recover a_N..exactly."""
        streams = []
        for extra in range(step + 1):
            size = base_size + extra
            window_sums = []
            k = 0
            while k * step + size <= len(values):
                window_sums.append(sum(values[k * step: k * step + size]))
                k += 1
            streams.append(window_sums)
        recovered = reconstruct_from_windows(streams, base_size, step)
        for index, value in recovered.items():
            assert value == values[index]
        if len(values) >= base_size + step + 1:
            # At least one tuple beyond the first N is always recoverable.
            assert recovered


class TestMergeProperties:
    policy_filters = st.sampled_from(["x > 0", "x < 50", "x >= 10", "TRUE"])
    user_filters = st.sampled_from(["x > 20", "x <= 40", "x != 30", "TRUE"])

    @given(
        policy_filters,
        user_filters,
        st.lists(st.integers(min_value=-20, max_value=70), max_size=50),
    )
    @settings(max_examples=150, deadline=None)
    def test_merged_filter_equals_both(self, policy_text, user_text, values):
        """Soundness: merged output = tuples passing policy AND user."""
        policy = QueryGraph("s").append(FilterOperator(policy_text))
        user = QueryGraph("s").append(FilterOperator(user_text))
        merged = merge_query_graphs(policy, user, schema=SCHEMA).graph
        got = [t["x"] for t in run_graph(merged, values)]
        oracle_policy = run_graph(QueryGraph("s").append(FilterOperator(policy_text)), values)
        expected = [
            t["x"]
            for t in run_graph(QueryGraph("s").append(FilterOperator(user_text)), values)
            if t in oracle_policy
        ]
        # Order-preserving comparison via sequences of x values.
        policy_set = {t["x"] for t in oracle_policy}
        expected = [x for x in expected if x in policy_set]
        assert got == expected

    @given(
        st.lists(st.sampled_from(["t", "x", "y"]), min_size=1, max_size=3, unique=True),
        st.lists(st.sampled_from(["t", "x", "y"]), min_size=1, max_size=3, unique=True),
    )
    @settings(max_examples=100, deadline=None)
    def test_map_merge_never_widens_policy(self, policy_attrs, user_attrs):
        """Safe-mode invariant: merged projection ⊆ policy projection."""
        policy = QueryGraph("s").append(MapOperator(policy_attrs))
        user = QueryGraph("s").append(MapOperator(user_attrs))
        try:
            merged = merge_query_graphs(policy, user, schema=SCHEMA).graph
        except MergeError:
            assume(False)  # disjoint projections: correctly rejected
        merged_set = merged.map_operator.attribute_set()
        assert merged_set <= set(a.lower() for a in policy_attrs)

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=6),
        st.integers(min_value=0, max_value=6),
    )
    @settings(max_examples=100, deadline=None)
    def test_window_merge_never_finer(self, size, step, extra_size, extra_step):
        """The merged window is never finer-grained than the policy's."""
        policy = QueryGraph("s").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size, step),
                [AggregationSpec.parse("x:sum")],
            )
        )
        user = QueryGraph("s").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size + extra_size, step + extra_step),
                [AggregationSpec.parse("x:sum")],
            )
        )
        merged = merge_query_graphs(
            policy, user, schema=SCHEMA,
            options=MergeOptions(keep_policy_time_attribute=False),
        ).graph
        window = merged.aggregate_operator.window
        assert window.size >= size
        assert window.step >= step


class TestStreamSqlRoundTripProperty:
    conditions = st.sampled_from(
        ["x > 1", "x <= 2 AND y > 0", "x != 3 OR y < 1", None]
    )
    maps = st.sampled_from([("x",), ("t", "x"), ("t", "x", "y"), None])
    windows = st.sampled_from([(4, 2), (10, 10), (3, 5), None])

    @given(conditions, maps, windows)
    @settings(max_examples=150, deadline=None)
    def test_generate_parse_identity(self, condition, map_attrs, window):
        graph = QueryGraph("s")
        if condition:
            graph.append(FilterOperator(condition))
        if map_attrs:
            graph.append(MapOperator(list(map_attrs)))
        if window:
            graph.append(
                AggregateOperator(
                    WindowSpec(WindowType.TUPLE, window[0], window[1]),
                    [AggregationSpec.parse("x:sum")],
                )
            )
        assume(map_attrs is None or "x" in map_attrs or window is None)
        graph.validate(SCHEMA)
        sql = generate_streamsql(graph, SCHEMA)
        parsed = parse_streamsql(sql)
        values = list(range(20))
        assert [t.values for t in run_graph(parsed.graph, values)] == [
            t.values for t in run_graph(graph, values)
        ]
