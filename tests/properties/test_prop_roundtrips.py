"""Property-based round-trip and equivalence tests across subsystems."""

from hypothesis import given, settings, strategies as st

from repro.core.obligations import graph_to_obligations, obligations_to_graph
from repro.core.user_query import UserQuery
from repro.core.audit import AuditLog
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.response import Effect
from repro.xacml.xml_io import parse_policy_xml, policy_to_xml

WEATHER_ATTRS = [f.name for f in WEATHER_SCHEMA]
NUMERIC_ATTRS = ["temperature", "humidity", "rainrate", "windspeed"]

conditions = st.sampled_from(
    ["rainrate > 5", "windspeed <= 12 AND humidity > 40",
     "temperature < 35 OR rainrate >= 1", None]
)
map_sets = st.lists(
    st.sampled_from(WEATHER_ATTRS), min_size=1, max_size=5, unique=True
) | st.none()
windows = st.tuples(
    st.sampled_from([WindowType.TUPLE, WindowType.TIME]),
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=30),
) | st.none()
agg_specs = st.lists(
    st.tuples(st.sampled_from(NUMERIC_ATTRS),
              st.sampled_from(["avg", "sum", "min", "max"])),
    min_size=1, max_size=3, unique_by=lambda pair: pair,
)


@st.composite
def policy_graphs(draw):
    graph = QueryGraph("weather")
    condition = draw(conditions)
    if condition:
        graph.append(FilterOperator(condition))
    map_attrs = draw(map_sets)
    window = draw(windows)
    specs = None
    if window is not None:
        specs = [AggregationSpec.parse(f"{a}:{f}") for a, f in draw(agg_specs)]
        if map_attrs is not None:
            map_attrs = sorted(set(map_attrs) | {s.attribute for s in specs}
                               | {"samplingtime"})
        elif window[0] is WindowType.TIME:
            pass  # schema has samplingtime for the time attribute
    if map_attrs is not None:
        graph.append(MapOperator(map_attrs))
    if window is not None:
        graph.append(AggregateOperator(WindowSpec(*window), specs))
    return graph


class TestObligationRoundTrip:
    @given(policy_graphs())
    @settings(max_examples=200, deadline=None)
    def test_graph_obligations_graph_identity(self, graph):
        rebuilt = obligations_to_graph(graph_to_obligations(graph), "weather")
        assert [op.kind for op in rebuilt.operators] == [
            op.kind for op in graph.operators
        ]
        if graph.filter_operator is not None:
            assert (
                rebuilt.filter_operator.condition.to_condition_string()
                == graph.filter_operator.condition.to_condition_string()
            )
        if graph.map_operator is not None:
            assert (
                rebuilt.map_operator.attribute_set()
                == graph.map_operator.attribute_set()
            )
        if graph.aggregate_operator is not None:
            original = graph.aggregate_operator
            copy = rebuilt.aggregate_operator
            assert copy.window == original.window
            assert {s.key for s in copy.aggregations} == {
                s.key for s in original.aggregations
            }

    @given(policy_graphs())
    @settings(max_examples=100, deadline=None)
    def test_policy_xml_round_trip_preserves_obligations(self, graph):
        policy = Policy(
            "p",
            target=Target.for_ids(resource="weather"),
            rules=[Rule("r", Effect.PERMIT)],
            obligations=graph_to_obligations(graph),
        )
        parsed = parse_policy_xml(policy_to_xml(policy))
        assert parsed.obligations == policy.obligations


class TestUserQueryRoundTrip:
    @given(conditions, map_sets,
           st.tuples(st.integers(min_value=1, max_value=20),
                     st.integers(min_value=1, max_value=20)) | st.none())
    @settings(max_examples=200, deadline=None)
    def test_xml_round_trip(self, condition, map_attrs, window_geometry):
        window = (
            WindowSpec(WindowType.TUPLE, *window_geometry)
            if window_geometry is not None
            else None
        )
        query = UserQuery(
            "weather",
            filter_condition=condition,
            map_attributes=map_attrs or (),
            window=window,
            aggregations=["avg(rainrate)"] if window else (),
        )
        again = UserQuery.from_xml(query.to_xml())
        assert again.stream == query.stream
        assert (again.filter_condition is None) == (query.filter_condition is None)
        if query.filter_condition is not None:
            assert (
                again.filter_condition.to_condition_string()
                == query.filter_condition.to_condition_string()
            )
        assert again.map_attributes == query.map_attributes
        assert again.window == query.window
        assert again.aggregations == query.aggregations


class TestAuditChainProperty:
    events = st.lists(
        st.tuples(
            st.sampled_from(["decision", "grant", "warning", "revocation"]),
            st.sampled_from(["u1", "u2", None]),
            st.sampled_from(["s1", "s2", None]),
        ),
        min_size=1,
        max_size=20,
    )

    @given(events)
    @settings(max_examples=100, deadline=None)
    def test_chain_verifies_and_survives_export(self, event_list):
        log = AuditLog()
        for kind, subject, resource in event_list:
            log.record(kind, subject, resource, note="x")
        assert log.verify_chain()
        assert AuditLog.import_json(log.export_json()).verify_chain()

    @given(events, st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_single_mutation_detected(self, event_list, data):
        log = AuditLog()
        for kind, subject, resource in event_list:
            log.record(kind, subject, resource, note="x")
        index = data.draw(st.integers(min_value=0, max_value=len(log._entries) - 1))
        entry = log._entries[index]
        log._entries[index] = entry._replace(kind=entry.kind + "-forged")
        assert not log.verify_chain()


class TestDirectVsPepEquivalence:
    """The PEP-merged query and the equivalent direct StreamSQL script
    must produce byte-identical output streams."""

    @given(policy_graphs())
    @settings(max_examples=50, deadline=None)
    def test_same_output_both_paths(self, graph):
        from repro.core import XacmlPlusInstance, stream_policy
        from repro.streams.sources import WeatherSource
        from repro.streams.streamsql.generator import generate_streamsql
        from repro.xacml.request import Request

        instance = XacmlPlusInstance(allow_partial_results=True)
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        instance.load_policy(stream_policy("p", "weather", graph, subject="u"))
        pep_result = instance.request_stream(Request.simple("u", "weather"))
        direct_handle = instance.engine.register_streamsql(
            generate_streamsql(graph)
        )
        records = WeatherSource(seed=11).records(120)
        instance.engine.push_many("weather", records)
        pep_output = instance.engine.read(pep_result.handle)
        direct_output = instance.engine.read(direct_handle)
        assert [t.values for t in pep_output] == [t.values for t in direct_output]
