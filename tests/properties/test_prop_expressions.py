"""Property-based tests for the expression toolkit (hypothesis)."""

from hypothesis import given, settings, strategies as st

from repro.expr.ast import (
    AndExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
)
from repro.expr.evaluate import evaluate
from repro.expr.normalize import eliminate_not, to_dnf
from repro.expr.parser import parse_condition
from repro.expr.satisfiability import (
    PairVerdict,
    check_two_simple_expressions,
    intersection_empty,
    is_subset,
    satisfies,
)
from repro.expr.simplify import simplify_conjunction, simplify_merged_condition

ATTRS = ("a", "b", "c")
VALUES = st.integers(min_value=-5, max_value=5)


@st.composite
def simple_expressions(draw, attrs=ATTRS):
    return SimpleExpression(
        draw(st.sampled_from(attrs)),
        draw(st.sampled_from(list(Operator))),
        draw(VALUES),
    )


@st.composite
def expressions(draw, depth=3):
    if depth == 0:
        return draw(simple_expressions())
    kind = draw(st.integers(min_value=0, max_value=3))
    if kind == 0:
        return draw(simple_expressions())
    if kind == 1:
        return NotExpression(draw(expressions(depth=depth - 1)))
    children = tuple(
        draw(expressions(depth=depth - 1))
        for _ in range(draw(st.integers(min_value=2, max_value=3)))
    )
    return AndExpression(children) if kind == 2 else OrExpression(children)


RECORDS = st.fixed_dictionaries(
    {attr: st.integers(min_value=-6, max_value=6) for attr in ATTRS}
)


class TestNormalisationEquivalence:
    @given(expressions(), RECORDS)
    @settings(max_examples=300, deadline=None)
    def test_eliminate_not_preserves_semantics(self, expression, record):
        assert evaluate(expression, record) == evaluate(
            eliminate_not(expression), record
        )

    @given(expressions(), RECORDS)
    @settings(max_examples=300, deadline=None)
    def test_dnf_preserves_semantics(self, expression, record):
        dnf = to_dnf(expression)
        got = any(
            all(evaluate(literal, record) for literal in conjunction)
            for conjunction in dnf
        )
        assert got == evaluate(expression, record)

    @given(expressions())
    @settings(max_examples=200, deadline=None)
    def test_round_trip_through_condition_string(self, expression):
        rendered = expression.to_condition_string()
        reparsed = parse_condition(rendered)
        assert reparsed.to_condition_string() == rendered


class TestSatisfiabilityAlgebra:
    @given(simple_expressions(attrs=("x",)), simple_expressions(attrs=("x",)),
           st.integers(min_value=-8, max_value=8))
    @settings(max_examples=500, deadline=None)
    def test_empty_intersection_has_no_witness(self, s1, s2, witness):
        if intersection_empty(s1, s2):
            assert not (satisfies(s1, witness) and satisfies(s2, witness))

    @given(simple_expressions(attrs=("x",)), simple_expressions(attrs=("x",)),
           st.integers(min_value=-8, max_value=8))
    @settings(max_examples=500, deadline=None)
    def test_subset_respects_membership(self, inner, outer, witness):
        if is_subset(inner, outer) and satisfies(inner, witness):
            assert satisfies(outer, witness)

    @given(simple_expressions(attrs=("x",)), simple_expressions(attrs=("x",)))
    @settings(max_examples=300, deadline=None)
    def test_verdict_consistency(self, policy, user):
        verdict = check_two_simple_expressions(policy, user)
        if verdict is PairVerdict.NR:
            assert intersection_empty(policy, user)
        if verdict is PairVerdict.OK:
            assert is_subset(user, policy)

    @given(simple_expressions(attrs=("x",)))
    @settings(max_examples=100, deadline=None)
    def test_self_pair_is_ok(self, expression):
        assert check_two_simple_expressions(expression, expression) is PairVerdict.OK


class TestSimplification:
    @given(st.lists(simple_expressions(attrs=("x", "y")), min_size=1, max_size=6),
           st.fixed_dictionaries({"x": VALUES, "y": VALUES}))
    @settings(max_examples=300, deadline=None)
    def test_simplify_conjunction_equivalent(self, literals, record):
        kept = simplify_conjunction(literals)
        assert kept, "simplification must never drop all literals"
        original = all(evaluate(l, record) for l in literals)
        simplified = all(evaluate(l, record) for l in kept)
        assert original == simplified

    @given(st.lists(simple_expressions(attrs=("x", "y")), min_size=1, max_size=6))
    @settings(max_examples=200, deadline=None)
    def test_simplify_conjunction_never_grows(self, literals):
        assert len(simplify_conjunction(literals)) <= len(set(literals))

    @given(expressions(depth=2), expressions(depth=2), RECORDS)
    @settings(max_examples=200, deadline=None)
    def test_merged_condition_equals_conjunction(self, first, second, record):
        merged = simplify_merged_condition(first, second)
        expected = evaluate(first, record) and evaluate(second, record)
        assert evaluate(merged, record) == expected
