"""Differential churn harness: shared-plan execution ≡ per-query.

The shared execution plan (:mod:`repro.streams.plan`) merges identical
operator prefixes across registered queries and feeds subsumed filters
from their subsuming hosts.  None of that sharing may be observable in
query outputs: under any interleaving of registration, withdrawal and
ingest, every query's output must equal what the seed per-query
interpreted engine (``StreamEngine.reference()``) produces.

The hypothesis harness drives random action sequences — register a
query from a template pool built for heavy prefix overlap (exact
duplicates and known implication pairs included), withdraw a random
live query, push a batch — against a shared engine (batched ingest) and
a reference engine (tuple-at-a-time ingest), then compares every
query's full drained output.  Afterwards it withdraws everything still
live and asserts the plan's node refcounts drained to zero: shared
nodes must not leak when the queries that shared them churn away.

Aggregates in the template pool are restricted to the exact-state set
(min/max/count/median/lastval), so outputs compare with ``==`` — drift
tolerances for avg/sum/stdev are the StreamSQL fuzzer's department.
"""

from hypothesis import given, settings, strategies as st

from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import DataType, Field, Schema

SCHEMA = Schema(
    "s",
    [
        Field("t", DataType.TIMESTAMP),
        Field("x", DataType.DOUBLE),
        Field("y", DataType.DOUBLE),
        Field("tag", DataType.STRING),
    ],
)

#: Filter pool with deliberate implication structure: ``x > 20 AND
#: y < 5`` implies ``x > 10``, ``x > 20`` implies both ``x > 10`` and
#: ``x > 10 OR tag = 'a'`` — so registration order decides which node
#: hosts which, and subsumption feeds must stay output-invisible.
CONDITIONS = (
    "x > 10",
    "x > 10",  # exact duplicate: must merge, not just subsume
    "x > 20",
    "x > 20 AND y < 5",
    "x > 10 OR tag = 'a'",
    "tag = 'a'",
    "TRUE",
)

WINDOWS = ((WindowType.TUPLE, 3, 3), (WindowType.TUPLE, 4, 2), (WindowType.TIME, 5, 5))
EXACT_AGGS = ("x:min", "x:max", "x:count", "x:median", "t:lastval")


def _aggregate(window, specs):
    window_type, size, step = window
    return AggregateOperator(
        WindowSpec(window_type, size, step),
        [AggregationSpec.parse(spec) for spec in specs],
        time_attribute="t" if window_type is WindowType.TIME else None,
    )


def build_templates():
    """A pool of graph factories with ~80% prefix overlap by design."""
    templates = []
    for condition in CONDITIONS:
        # Filter-only, filter+map, filter+window: the map and window
        # tails diverge off shared filter prefixes.
        templates.append(lambda c=condition: QueryGraph("s", [FilterOperator(c)]))
        templates.append(
            lambda c=condition: QueryGraph(
                "s", [FilterOperator(c), MapOperator(["t", "x"])]
            )
        )
    for window in WINDOWS:
        templates.append(
            lambda w=window: QueryGraph(
                "s", [FilterOperator("x > 10"), _aggregate(w, EXACT_AGGS[:2])]
            )
        )
        # Same filter AND same window shape, different aggregation set:
        # shares the filter node but needs its own aggregate node.
        templates.append(
            lambda w=window: QueryGraph(
                "s", [FilterOperator("x > 10"), _aggregate(w, EXACT_AGGS[2:])]
            )
        )
    # Identical stateful chains registered twice share the aggregate
    # node only until it has consumed input (clone-on-divergence).
    templates.append(
        lambda: QueryGraph("s", [_aggregate((WindowType.TUPLE, 3, 3), EXACT_AGGS[:3])])
    )
    templates.append(lambda: QueryGraph("s", []))  # passthrough
    return templates


TEMPLATES = build_templates()


def record(index, value):
    return {
        "t": float(index),
        "x": float(value),
        "y": float(-value),
        "tag": "a" if value % 2 else "b",
    }


actions = st.lists(
    st.one_of(
        st.tuples(st.just("register"), st.integers(0, len(TEMPLATES) - 1)),
        st.tuples(st.just("withdraw"), st.integers(0, 63)),
        st.tuples(
            st.just("push"),
            st.lists(st.integers(min_value=-40, max_value=40), max_size=10),
        ),
    ),
    min_size=1,
    max_size=24,
)


class TestSharedPlanChurnEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(script=actions)
    def test_shared_matches_reference_under_churn(self, script):
        shared = StreamEngine()
        reference = StreamEngine.reference()
        assert shared.shared and not reference.shared
        for engine in (shared, reference):
            engine.register_input_stream("s", SCHEMA)

        registered = []  # (shared_sub, reference_sub), registration order
        live = []  # indices into `registered`
        clock = 0
        for action, payload in script:
            if action == "register":
                graph = TEMPLATES[payload]()
                subs = []
                for engine in (shared, reference):
                    handle = engine.register_query(graph.fresh_copy())
                    subs.append((handle, engine.subscribe(handle)))
                live.append(len(registered))
                registered.append(tuple(subs))
            elif action == "withdraw":
                if not live:
                    continue
                index = live.pop(payload % len(live))
                for engine, (handle, _) in zip(
                    (shared, reference), registered[index]
                ):
                    engine.withdraw(handle)
            else:
                batch = [record(clock + i, v) for i, v in enumerate(payload)]
                clock += len(payload)
                shared.push_batch("s", batch)
                for row in batch:
                    reference.push("s", row)

        for index, (shared_q, reference_q) in enumerate(registered):
            got = [t.values for t in shared_q[1].drain()]
            expected = [t.values for t in reference_q[1].drain()]
            assert got == expected, f"query #{index} diverged"

        # -- satellite: refcount accounting must drain to zero --------
        for engine in (shared, reference):
            assert engine.total_registered == len(registered)
            assert engine.total_withdrawn == len(registered) - len(live)
            assert engine.active_query_count == len(live)
            assert (
                engine.total_registered - engine.total_withdrawn
                == engine.active_query_count
            )
        for index in list(live):
            for engine, (handle, _) in zip((shared, reference), registered[index]):
                engine.withdraw(handle)
        assert shared.active_query_count == 0
        for stats in shared.plan_stats().values():
            assert stats["queries"] == 0
            assert stats["live_nodes"] == 0
        assert reference.plan_stats() == {}

    def test_template_pool_actually_shares(self):
        """The harness is only a sharing test if the pool shares: when
        every template registers once, merged + subsumed nodes must be
        a large fraction of what per-query planning would build."""
        engine = StreamEngine()
        engine.register_input_stream("s", SCHEMA)
        for template in TEMPLATES:
            engine.register_query(template())
        engine.push_batch("s", [record(i, i % 30) for i in range(40)])
        (stats,) = engine.plan_stats().values()
        assert stats["queries"] == len(TEMPLATES)
        total_operators = sum(len(template()) for template in TEMPLATES)
        assert stats["nodes_created"] < total_operators * 2 // 3
        assert stats["nodes_shared"] >= 12
        assert stats["nodes_subsumed"] >= 2
