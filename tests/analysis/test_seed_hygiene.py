"""Seed-hygiene lint: global randomness and salted hashing."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import SeedHygieneRule


def findings_for(source):
    return analyze_source(textwrap.dedent(source), [SeedHygieneRule()])


class TestGlobalRandom:
    def test_module_level_sampler_is_flagged(self):
        findings = findings_for(
            """
            import random

            def jitter():
                return random.random()
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "seed-random"

    def test_aliased_import_is_tracked(self):
        findings = findings_for(
            """
            import random as rnd

            def pick(items):
                return rnd.choice(items)
            """
        )
        assert len(findings) == 1

    def test_unseeded_random_instance_is_flagged(self):
        findings = findings_for(
            """
            import random

            rng = random.Random()
            """
        )
        assert len(findings) == 1
        assert "without a seed" in findings[0].message

    def test_seeded_random_instance_passes(self):
        assert not findings_for(
            """
            import random

            rng = random.Random(42)
            """
        )

    def test_instance_method_calls_pass(self):
        # rng.random() draws from an owned, seeded generator
        assert not findings_for(
            """
            import random

            def sample(rng: random.Random):
                return rng.random()
            """
        )

    def test_global_seed_call_is_flagged(self):
        # random.seed() mutates shared global state other modules read
        findings = findings_for(
            """
            import random

            random.seed(42)
            """
        )
        assert len(findings) == 1


class TestHashing:
    def test_builtin_hash_is_flagged(self):
        findings = findings_for(
            """
            def seed_for(connection_id):
                return hash(("seed", connection_id))
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "seed-hash"
        assert "PYTHONHASHSEED" in findings[0].message

    def test_explicit_dunder_hash_is_flagged(self):
        # the exact pattern fixed in bench_served_latency.py
        findings = findings_for(
            """
            import random

            def make_rng(seed, connection_id):
                return random.Random((seed, connection_id).__hash__())
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "seed-hash"

    def test_hash_inside_dunder_hash_method_passes(self):
        assert not findings_for(
            """
            class Point:
                def __init__(self, x, y):
                    self.x = x
                    self.y = y

                def __hash__(self):
                    return hash((self.x, self.y))
            """
        )

    def test_suppression_with_reason_is_honoured(self):
        findings = findings_for(
            """
            def bucket(key, n):
                return hash(key) % n  # analysis: allow[seed-hash] in-process dict bucketing only
            """
        )
        assert findings and all(f.suppressed for f in findings)
