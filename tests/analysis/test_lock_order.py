"""Lock-order detector: cycles and documented required edges."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import LockOrderRule


def findings_for(source, required=None):
    rule = LockOrderRule(required if required is not None else {})
    return analyze_source(textwrap.dedent(source), [rule])


# The classic ABBA shape, in sharding-flavoured code: one path takes
# runtime.lock then _pending_lock, the other path the reverse.
ABBA = """
class Pool:
    def submit(self, runtime):
        with runtime.lock:
            with self._pending_lock:
                pass

    def cancel(self, runtime):
        with self._pending_lock:
            with runtime.lock:
                pass
"""


class TestCycles:
    def test_abba_cycle_is_detected(self):
        findings = findings_for(ABBA)
        assert len(findings) == 1
        assert findings[0].rule == "lock-order"
        assert "ABBA" in findings[0].message
        assert "lock" in findings[0].message
        assert "_pending_lock" in findings[0].message

    def test_consistent_order_passes(self):
        assert not findings_for(
            """
            class Pool:
                def submit(self, runtime):
                    with runtime.lock:
                        with self._pending_lock:
                            pass

                def other(self, runtime):
                    with runtime.lock:
                        with self._pending_lock:
                            pass
            """
        )

    def test_same_lock_nested_is_a_self_cycle(self):
        findings = findings_for(
            """
            def nested(a, b):
                with a.lock:
                    with b.lock:
                        pass
            """
        )
        assert len(findings) == 1  # `lock` -> `lock`: same identity re-acquired

    def test_three_way_cycle(self):
        findings = findings_for(
            """
            def one(x):
                with x.a_lock:
                    with x.b_lock:
                        pass

            def two(x):
                with x.b_lock:
                    with x.c_lock:
                        pass

            def three(x):
                with x.c_lock:
                    with x.a_lock:
                        pass
            """
        )
        assert len(findings) == 1
        assert "a_lock" in findings[0].message

    def test_sibling_with_blocks_do_not_create_edges(self):
        assert not findings_for(
            """
            def sequential(x):
                with x.a_lock:
                    pass
                with x.b_lock:
                    pass

            def reverse(x):
                with x.b_lock:
                    pass
                with x.a_lock:
                    pass
            """
        )

    def test_multi_item_with_orders_left_to_right(self):
        findings = findings_for(
            """
            def one(x):
                with x.a_lock, x.b_lock:
                    pass

            def two(x):
                with x.b_lock, x.a_lock:
                    pass
            """
        )
        assert len(findings) == 1

    def test_non_lock_contexts_are_ignored(self):
        assert not findings_for(
            """
            def io(path, x):
                with open(path) as handle:
                    with x.a_lock:
                        handle.read()
            """
        )

    def test_function_boundary_resets_held_locks(self):
        """KNOWN LIMITATION (lexical analysis): a lock held by a caller
        is invisible inside the callee, so interprocedural ABBA is not
        detected — that is what REQUIRED_EDGES documents instead."""
        findings = findings_for(
            """
            def outer(x):
                with x.a_lock:
                    inner(x)

            def inner(x):
                with x.b_lock:
                    with x.a_lock:  # ABBA only via the call chain
                        pass
            """
        )
        assert findings == []  # the lexical b->a edge alone is acyclic

    def test_lexical_nesting_in_callee_still_counts(self):
        # rewrite of the above with the reverse edge lexically present
        findings = findings_for(
            """
            def outer(x):
                with x.a_lock:
                    with x.b_lock:
                        pass

            def inner(x):
                with x.b_lock:
                    with x.a_lock:
                        pass
            """
        )
        assert len(findings) == 1


class TestRequiredEdges:
    REQUIRED = {"<fixture>.py": [("lock", "_pending_lock")]}

    def test_documented_edge_present_passes(self):
        findings = findings_for(
            """
            class Pool:
                def submit(self, runtime):
                    with runtime.lock:
                        with self._pending_lock:
                            pass
            """,
            required=self.REQUIRED,
        )
        assert findings == []

    def test_reversed_documented_edge_is_flagged(self):
        findings = findings_for(
            """
            class Pool:
                def submit(self, runtime):
                    with self._pending_lock:
                        with runtime.lock:
                            pass
            """,
            required=self.REQUIRED,
        )
        rules = [f.rule for f in findings]
        # the reverse edge violates the documented order AND the pair
        # of directions would be reported as missing the forward edge
        assert "lock-order-edge" in rules

    def test_missing_documented_edge_is_flagged(self):
        findings = findings_for(
            """
            class Pool:
                def submit(self, runtime):
                    with runtime.lock:
                        pass
            """,
            required=self.REQUIRED,
        )
        assert any(
            f.rule == "lock-order-edge" and "no longer appears" in f.message
            for f in findings
        )

    def test_default_required_edges_target_sharding(self):
        from repro.analysis.rules.lock_order import REQUIRED_EDGES

        assert REQUIRED_EDGES["sharding.py"] == [("lock", "_pending_lock")]
