"""Guarded-by checker: lock, event-loop, and owner guard kinds."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import GuardedByRule


def findings_for(source):
    return [
        f for f in analyze_source(textwrap.dedent(source), [GuardedByRule()])
        if f.rule in ("guarded-by", "guard-conflict")
    ]


# Shaped like ProcessShardPool: a pending map declared guarded by
# `_pending_lock`, mutated once correctly and once bare.
SHARDING_SHAPED = """
import threading

class Pool:
    def __init__(self):
        self._pending = {}  # guarded by: self._pending_lock
        self._pending_lock = threading.Lock()

    def submit(self, tag, call):
        with self._pending_lock:
            self._pending[tag] = call

    def forget(self, tag):
        self._pending.pop(tag, None)
"""


class TestLockGuard:
    def test_unguarded_mutation_in_sharding_shaped_code(self):
        findings = findings_for(SHARDING_SHAPED)
        assert len(findings) == 1
        assert findings[0].line == 14  # the bare .pop in forget()
        assert "_pending_lock" in findings[0].message

    def test_mutation_under_the_right_lock_passes(self):
        assert not findings_for(
            """
            import threading

            class Pool:
                def __init__(self):
                    self.count = 0  # guarded by: self._lock
                    self._lock = threading.Lock()

                def bump(self):
                    with self._lock:
                        self.count += 1
            """
        )

    def test_wrong_lock_is_flagged(self):
        findings = findings_for(
            """
            class Pool:
                def __init__(self):
                    self.count = 0  # guarded by: self._lock

                def bump(self):
                    with self._other_lock:
                        self.count += 1
            """
        )
        assert len(findings) == 1

    def test_receiver_matching_honours_another_objects_lock(self):
        # a supervisor mutating runtime.status under runtime.lock, the
        # _ShardRuntime pattern.
        assert not findings_for(
            """
            class Runtime:
                def __init__(self):
                    self.status = "up"  # guarded by: self.lock

            class Supervisor:
                def mark_down(self, runtime):
                    with runtime.lock:
                        runtime.status = "down"
            """
        )

    def test_receiver_matching_rejects_the_wrong_receivers_lock(self):
        findings = findings_for(
            """
            class Runtime:
                def __init__(self):
                    self.status = "up"  # guarded by: self.lock

            class Supervisor:
                def mark_down(self, runtime):
                    with self.lock:
                        runtime.status = "down"
            """
        )
        assert len(findings) == 1

    def test_mutator_method_calls_are_mutations(self):
        findings = findings_for(
            """
            class Pool:
                def __init__(self):
                    self._items = []  # guarded by: self._lock

                def push(self, item):
                    self._items.append(item)
            """
        )
        assert len(findings) == 1

    def test_declaring_function_is_exempt(self):
        # __init__ assigns without the lock held: construction precedes
        # sharing, so the declaration site itself never flags.
        assert not findings_for(
            """
            class Pool:
                def __init__(self):
                    self.count = 0  # guarded by: self._lock
            """
        )

    def test_with_in_helper_false_positive_is_documented(self):
        """KNOWN LIMITATION: the checker is lexical, not
        interprocedural.  A helper that mutates while its caller holds
        the lock IS flagged; such helpers need a reasoned suppression.
        This test pins the behaviour so a future interprocedural pass
        shows up as an intentional change."""
        findings = findings_for(
            """
            class Pool:
                def __init__(self):
                    self.count = 0  # guarded by: self._lock

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self.count += 1
            """
        )
        assert len(findings) == 1  # the helper body, despite being safe

    def test_suppression_silences_the_helper(self):
        findings = analyze_source(textwrap.dedent(
            """
            class Pool:
                def __init__(self):
                    self.count = 0  # guarded by: self._lock

                def _bump_locked(self):
                    # analysis: allow[guarded-by] caller holds self._lock
                    self.count += 1
            """
        ), [GuardedByRule()])
        guarded = [f for f in findings if f.rule == "guarded-by"]
        assert guarded and all(f.suppressed for f in guarded)


class TestEventLoopGuard:
    def test_sync_mutation_flagged_async_mutation_allowed(self):
        findings = findings_for(
            """
            class Server:
                def __init__(self):
                    self.read_pauses = 0  # guarded by: event-loop

                async def handle(self):
                    self.read_pauses += 1

                def poke(self):
                    self.read_pauses += 1
            """
        )
        assert len(findings) == 1
        assert "synchronous" in findings[0].message

    def test_sync_helper_nested_in_async_counts_as_sync(self):
        findings = findings_for(
            """
            class Server:
                def __init__(self):
                    self.count = 0  # guarded by: event-loop

                async def handle(self):
                    def callback():
                        self.count += 1
                    return callback
            """
        )
        # the checker treats any enclosing async frame as on-loop: a
        # callback defined inside a coroutine is assumed to be
        # scheduled on that same loop.
        assert findings == []


class TestOwnerGuard:
    def test_external_mutation_flagged(self):
        findings = findings_for(
            """
            class Stream:
                def __init__(self):
                    self._buffer = []  # guarded by: owner

                def push(self, item):
                    self._buffer.append(item)

            class Meddler:
                def poke(self, stream):
                    stream._buffer.append("x")
            """
        )
        assert len(findings) == 1
        assert findings[0].line == 11

    def test_module_level_mutation_is_exempt(self):
        assert not findings_for(
            """
            class Stream:
                def __init__(self):
                    self._buffer = []  # guarded by: owner

            s = Stream()
            s._buffer = ["preloaded"]
            """
        )


class TestDeclarations:
    def test_conflicting_redeclaration_is_flagged(self):
        findings = findings_for(
            """
            class A:
                def __init__(self):
                    self.x = 0  # guarded by: self._lock

            class B:
                def __init__(self):
                    self.x = 0  # guarded by: owner
            """
        )
        assert any(f.rule == "guard-conflict" for f in findings)

    def test_unannotated_attributes_are_ignored(self):
        assert not findings_for(
            """
            class Plain:
                def __init__(self):
                    self.x = 0

                def bump(self):
                    self.x += 1
            """
        )
