"""The gate: the full rule suite over the real codebase is clean.

This is the same invocation CI runs (``python -m repro.analysis
--check src benchmarks``): zero unsuppressed findings, and every
suppression in the tree carries a written reason.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _analyzed_paths():
    return [str(REPO_ROOT / "src"), str(REPO_ROOT / "benchmarks")]


def test_codebase_has_zero_unsuppressed_findings():
    report = analyze_paths(_analyzed_paths())
    assert report.files_analyzed > 50  # the walk found the real tree
    details = "\n".join(
        f"{f.rule} {f.location} {f.message}" for f in report.active
    )
    assert not report.active, f"unsuppressed findings:\n{details}"


def test_every_suppression_carries_a_reason():
    report = analyze_paths(_analyzed_paths())
    assert all(finding.reason for finding in report.suppressed)


def test_known_suppressions_are_the_expected_ones():
    """Pin the suppression inventory: adding a suppression is a
    reviewed decision, not drive-by noise.  Update this list (and the
    reason at the site) together."""
    report = analyze_paths(_analyzed_paths())
    locations = {
        (f.rule, f.path.replace("\\", "/").split("/repro/", 1)[-1])
        for f in report.suppressed
    }
    assert locations == {
        ("seed-random", "serving/client.py"),
        ("guarded-by", "serving/client.py"),
        ("async-blocking", "loadgen/driver.py"),
    }
