"""Exception-discipline lint: silent broad handlers and untyped raises."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import ExceptionDisciplineRule


def findings_for(source):
    return analyze_source(
        textwrap.dedent(source), [ExceptionDisciplineRule()]
    )


class TestSilentHandlers:
    def test_silent_swallow_is_flagged(self):
        findings = findings_for(
            """
            def teardown(q):
                try:
                    q.close()
                except Exception:
                    pass
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "except-silent"

    def test_bare_except_is_flagged(self):
        findings = findings_for(
            """
            def teardown(q):
                try:
                    q.close()
                except:
                    pass
            """
        )
        assert len(findings) == 1

    def test_broad_member_of_tuple_is_flagged(self):
        findings = findings_for(
            """
            import asyncio

            def teardown(q):
                try:
                    q.close()
                except (asyncio.CancelledError, Exception):
                    pass
            """
        )
        assert len(findings) == 1

    def test_logging_handler_passes(self):
        assert not findings_for(
            """
            import logging

            logger = logging.getLogger(__name__)

            def teardown(q):
                try:
                    q.close()
                except Exception as error:
                    logger.debug("close failed: %s", error)
            """
        )

    def test_reraising_handler_passes(self):
        assert not findings_for(
            """
            def teardown(q):
                try:
                    q.close()
                except Exception:
                    raise
            """
        )

    def test_counter_handler_passes(self):
        assert not findings_for(
            """
            class Bus:
                def publish(self, listener, event):
                    try:
                        listener(event)
                    except Exception:
                        self.listener_failures += 1
            """
        )

    def test_handler_using_the_exception_passes(self):
        assert not findings_for(
            """
            def probe(call):
                try:
                    return call()
                except Exception as error:
                    return str(error)
            """
        )

    def test_narrow_handler_is_not_checked(self):
        assert not findings_for(
            """
            def read(d, key):
                try:
                    return d[key]
                except KeyError:
                    pass
            """
        )

    def test_suppression_with_reason_is_honoured(self):
        findings = findings_for(
            """
            def teardown(q):
                try:
                    q.close()
                except Exception:  # analysis: allow[except-silent] best-effort close on a dying queue
                    pass
            """
        )
        assert findings and all(f.suppressed for f in findings)


class TestRaiseTyping:
    def test_raising_bare_exception_is_flagged(self):
        findings = findings_for(
            """
            def fail():
                raise Exception("boom")
            """
        )
        assert len(findings) == 1
        assert findings[0].rule == "raise-untyped"

    def test_unknown_name_is_flagged(self):
        findings = findings_for(
            """
            def fail():
                raise SomethingUndeclared("boom")
            """
        )
        assert len(findings) == 1

    def test_builtin_exception_passes(self):
        assert not findings_for(
            """
            def fail():
                raise ValueError("bad input")
            """
        )

    def test_import_from_repro_errors_passes(self):
        assert not findings_for(
            """
            from repro.errors import ShardUnavailableError

            def fail():
                raise ShardUnavailableError("shard 3 down", shard_id=3)
            """
        )

    def test_locally_defined_class_passes(self):
        assert not findings_for(
            """
            class LocalError(RuntimeError):
                pass

            def fail():
                raise LocalError("boom")
            """
        )

    def test_reraising_a_stored_instance_passes(self):
        # `raise refusal` re-raises an instance constructed (and type
        # checked) elsewhere — only construction sites are checked.
        assert not findings_for(
            """
            def flush(refusal):
                if refusal is not None:
                    raise refusal
            """
        )

    def test_dotted_raise_is_out_of_scope(self):
        assert not findings_for(
            """
            import asyncio

            def fail():
                raise asyncio.TimeoutError()
            """
        )
