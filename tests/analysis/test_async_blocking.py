"""Async-blocking lint: blocking calls inside ``async def`` bodies."""

from __future__ import annotations

import textwrap

from repro.analysis import analyze_source
from repro.analysis.rules import AsyncBlockingRule


def findings_for(source):
    return analyze_source(textwrap.dedent(source), [AsyncBlockingRule()])


class TestBlockingCalls:
    def test_time_sleep_is_flagged(self):
        findings = findings_for(
            """
            import time

            async def handler():
                time.sleep(1)
            """
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message
        assert "asyncio.sleep" in findings[0].message

    def test_awaited_asyncio_sleep_passes(self):
        assert not findings_for(
            """
            import asyncio

            async def handler():
                await asyncio.sleep(1)
            """
        )

    def test_sleep_in_sync_function_passes(self):
        assert not findings_for(
            """
            import time

            def poll():
                time.sleep(1)
            """
        )

    def test_queue_get_is_flagged_awaited_get_is_not(self):
        findings = findings_for(
            """
            async def bad(queue):
                return queue.get()

            async def good(queue):
                return await queue.get()
            """
        )
        assert len(findings) == 1
        assert "bad" in findings[0].message

    def test_queue_put_on_named_queue_is_flagged(self):
        findings = findings_for(
            """
            async def report(out_queue, item):
                out_queue.put(item)
            """
        )
        assert len(findings) == 1

    def test_bare_lock_acquire_is_flagged(self):
        findings = findings_for(
            """
            async def critical(self):
                self._lock.acquire()
            """
        )
        assert len(findings) == 1
        assert "acquire" in findings[0].message

    def test_builtin_open_is_flagged(self):
        findings = findings_for(
            """
            async def load(path):
                with open(path) as handle:
                    return handle.read()
            """
        )
        assert len(findings) == 1
        assert "open()" in findings[0].message

    def test_socket_recv_and_thread_join_are_flagged(self):
        findings = findings_for(
            """
            async def pump(sock, worker_thread):
                data = sock.recv(4096)
                worker_thread.join()
                return data
            """
        )
        assert len(findings) == 2

    def test_subprocess_run_is_flagged(self):
        findings = findings_for(
            """
            import subprocess

            async def shell(cmd):
                subprocess.run(cmd)
            """
        )
        assert len(findings) == 1


class TestExemptions:
    def test_run_in_executor_reference_passes(self):
        # the blocking callable is *referenced*, not called — the
        # executor runs it off-loop, which is the sanctioned pattern.
        assert not findings_for(
            """
            import time

            async def handler(loop, queue):
                await loop.run_in_executor(None, queue.get)
                await loop.run_in_executor(None, time.sleep, 1)
            """
        )

    def test_nested_sync_def_is_not_attributed_to_the_coroutine(self):
        assert not findings_for(
            """
            import time

            async def handler(loop):
                def blocking_work():
                    time.sleep(1)
                await loop.run_in_executor(None, blocking_work)
            """
        )

    def test_arguments_of_awaited_calls_are_still_checked(self):
        findings = findings_for(
            """
            import time

            async def handler(queue):
                await queue.put(time.sleep(1))
            """
        )
        assert len(findings) == 1
        assert "time.sleep" in findings[0].message

    def test_suppression_with_reason_is_honoured(self):
        findings = findings_for(
            """
            async def report(out_queue, item):
                # analysis: allow[async-blocking] mp queue put hands off to the feeder thread
                out_queue.put(item)
            """
        )
        assert findings and all(f.suppressed for f in findings)
