"""Engine behaviour: suppressions, meta-findings, report output, CLI."""

from __future__ import annotations

import json
import textwrap

from repro.analysis import analyze_paths, analyze_source, build_default_rules
from repro.analysis.__main__ import main as cli_main
from repro.analysis.rules import SeedHygieneRule


def findings_for(source, rules=None):
    return analyze_source(textwrap.dedent(source), rules)


class TestSuppressions:
    def test_trailing_suppression_with_reason_silences(self):
        findings = findings_for(
            """
            import random
            x = random.random()  # analysis: allow[seed-random] fixture needs raw entropy
            """,
            [SeedHygieneRule()],
        )
        assert len(findings) == 1
        assert findings[0].suppressed
        assert findings[0].reason == "fixture needs raw entropy"

    def test_standalone_comment_covers_next_line(self):
        findings = findings_for(
            """
            import random
            # analysis: allow[seed-random] fixture needs raw entropy
            x = random.random()
            """,
            [SeedHygieneRule()],
        )
        assert [f.suppressed for f in findings] == [True]

    def test_suppression_does_not_leak_to_other_lines(self):
        findings = findings_for(
            """
            import random
            x = random.random()  # analysis: allow[seed-random] only this one
            y = random.random()
            """,
            [SeedHygieneRule()],
        )
        assert [f.suppressed for f in findings] == [True, False]

    def test_suppression_without_reason_is_a_finding(self):
        findings = findings_for(
            """
            import random
            x = random.random()  # analysis: allow[seed-random]
            """,
            [SeedHygieneRule()],
        )
        rules = {f.rule for f in findings}
        assert "suppression-reason" in rules
        # and the original finding is NOT silenced by a reasonless allow
        seed = [f for f in findings if f.rule == "seed-random"]
        assert seed and not seed[0].suppressed

    def test_suppression_naming_unknown_rule_is_a_finding(self):
        findings = findings_for(
            """
            x = 1  # analysis: allow[no-such-rule] because reasons
            """,
            [SeedHygieneRule()],
        )
        assert any(f.rule == "suppression-unknown-rule" for f in findings)

    def test_meta_findings_cannot_be_suppressed(self):
        findings = findings_for(
            """
            # analysis: allow[suppression-unknown-rule] quiet the meta rule
            x = 1  # analysis: allow[bogus-rule] reason text
            """,
            [SeedHygieneRule()],
        )
        meta = [f for f in findings if f.rule == "suppression-unknown-rule"]
        assert meta and not any(f.suppressed for f in meta)

    def test_one_comment_may_allow_multiple_rules(self):
        findings = findings_for(
            """
            import random
            h = hash(str(random.random()))  # analysis: allow[seed-random,seed-hash] fixture mixes both
            """,
            [SeedHygieneRule()],
        )
        assert findings and all(f.suppressed for f in findings)


class TestReport(object):
    def test_analyze_paths_report_and_json(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        report = analyze_paths([str(tmp_path)], [SeedHygieneRule()])
        assert report.files_analyzed == 1
        assert report.counts() == {"seed-random": 1}
        artifact = tmp_path / "findings.json"
        report.write_json(str(artifact))
        payload = json.loads(artifact.read_text())
        assert payload["counts"] == {"seed-random": 1}
        assert payload["findings"][0]["rule"] == "seed-random"
        assert "seed-random" in report.table()

    def test_parse_error_becomes_finding(self, tmp_path):
        broken = tmp_path / "broken.py"
        broken.write_text("def nope(:\n")
        report = analyze_paths([str(tmp_path)], [SeedHygieneRule()])
        assert [f.rule for f in report.active] == ["parse-error"]

    def test_default_rule_suite_is_complete(self):
        ids = {rule.rule_id for rule in build_default_rules()}
        assert ids == {
            "guarded-by", "lock-order", "async-blocking",
            "except-silent", "seed-random",
        }


class TestCli:
    def test_check_exits_nonzero_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert cli_main([str(bad), "--check"]) == 1
        assert "seed-random" in capsys.readouterr().out

    def test_check_exits_zero_when_clean(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert cli_main([str(good), "--check"]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_json_artifact_written(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        artifact = tmp_path / "out.json"
        assert cli_main([str(good), "--json", str(artifact)]) == 0
        assert json.loads(artifact.read_text())["files_analyzed"] == 1

    def test_rules_filter(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        # with only lock-order active the seed finding is not produced
        assert cli_main([str(bad), "--check", "--rules", "lock-order"]) == 0
        assert cli_main([str(bad), "--check", "--rules", "seed-random"]) == 1
