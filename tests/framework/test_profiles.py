"""Tests for the deployment latency profiles."""

import pytest

from repro.errors import FrameworkError
from repro.framework.network import SimulatedNetwork
from repro.framework.profiles import (
    PROFILES,
    azure_like_profile,
    ec2_like_profile,
    get_profile,
    intranet_profile,
)


class TestProfileRegistry:
    def test_known_profiles(self):
        assert set(PROFILES) == {"intranet", "ec2", "azure"}
        for name in PROFILES:
            assert get_profile(name) is not None

    def test_unknown_profile(self):
        with pytest.raises(FrameworkError):
            get_profile("gcp")

    def test_seeded_determinism(self):
        a = get_profile("ec2", seed=5)
        b = get_profile("ec2", seed=5)
        assert [a.link_delay("client-proxy") for _ in range(5)] == [
            b.link_delay("client-proxy") for _ in range(5)
        ]


class TestProfileShapes:
    @staticmethod
    def mean_delay(model, link, samples=500):
        return sum(model.link_delay(link) for _ in range(samples)) / samples

    def test_cloud_profiles_have_fast_datacenter_links(self):
        for factory in (ec2_like_profile, azure_like_profile):
            model = factory(seed=1)
            assert self.mean_delay(model, "proxy-server") < 0.02
            assert self.mean_delay(model, "server-dsms") < 0.02

    def test_cloud_profiles_have_slow_client_links(self):
        intranet = intranet_profile(seed=1)
        for factory in (ec2_like_profile, azure_like_profile):
            cloud = factory(seed=1)
            assert (
                self.mean_delay(cloud, "client-proxy")
                > self.mean_delay(intranet, "client-proxy")
            )

    def test_profiles_drive_networks(self):
        for name in PROFILES:
            network = SimulatedNetwork(get_profile(name))
            before = network.clock.now()
            network.transfer("client-proxy")
            network.dsms_submit("server")
            assert network.clock.now() > before
