"""Tests for the virtual clock and latency model."""

import pytest

from repro.errors import TransportError
from repro.framework.network import LatencyModel, SimulatedNetwork, VirtualClock


class TestVirtualClock:
    def test_advance(self):
        clock = VirtualClock()
        assert clock.now() == 0.0
        clock.advance(1.5)
        clock.advance(0.25)
        assert clock.now() == 1.75

    def test_negative_rejected(self):
        with pytest.raises(TransportError):
            VirtualClock().advance(-1)

    def test_custom_start(self):
        assert VirtualClock(100.0).now() == 100.0


class TestLatencyModel:
    def test_deterministic_with_seed(self):
        first = LatencyModel(seed=5)
        second = LatencyModel(seed=5)
        assert [first.link_delay("client-proxy") for _ in range(10)] == [
            second.link_delay("client-proxy") for _ in range(10)
        ]

    def test_delays_positive(self):
        model = LatencyModel(seed=1)
        for _ in range(200):
            assert model.link_delay("proxy-server") >= model.floor

    def test_unknown_link(self):
        with pytest.raises(TransportError):
            LatencyModel().link_delay("mars-earth")

    def test_payload_size_increases_delay(self):
        model = LatencyModel(seed=1)
        small = [LatencyModel(seed=1).link_delay("client-proxy", 100) for _ in range(1)]
        large = [LatencyModel(seed=1).link_delay("client-proxy", 1_000_000) for _ in range(1)]
        assert large[0] > small[0]

    def test_first_connection_much_slower(self):
        model = LatencyModel(seed=1)
        first = [LatencyModel(seed=i).dsms_submit_delay(True) for i in range(30)]
        later = [LatencyModel(seed=i).dsms_submit_delay(False) for i in range(30)]
        assert min(first) > max(later)

    def test_policy_load_calibration(self):
        """Mean ≈ 0.25 s, σ ≈ 0.06 s (paper Section 4.2)."""
        model = LatencyModel(seed=7)
        samples = [model.policy_load_delay() for _ in range(2000)]
        mean = sum(samples) / len(samples)
        variance = sum((s - mean) ** 2 for s in samples) / len(samples)
        assert mean == pytest.approx(0.25, abs=0.01)
        assert variance ** 0.5 == pytest.approx(0.06, abs=0.01)


class TestSimulatedNetwork:
    def test_transfer_advances_clock(self):
        network = SimulatedNetwork()
        before = network.clock.now()
        delay = network.transfer("client-proxy")
        assert network.clock.now() == before + delay

    def test_connection_pool_warms_up(self):
        network = SimulatedNetwork(dsms_pool_size=3)
        delays = [network.dsms_submit("server") for _ in range(10)]
        # First three submissions pay connection setup; the rest do not.
        assert min(delays[:3]) > max(delays[3:])

    def test_pools_per_endpoint(self):
        network = SimulatedNetwork(dsms_pool_size=1)
        first_server = network.dsms_submit("server")
        first_client = network.dsms_submit("client")
        assert first_server > 1.0 and first_client > 1.0

    def test_reset_pools(self):
        network = SimulatedNetwork(dsms_pool_size=1)
        network.dsms_submit("server")
        warm = network.dsms_submit("server")
        network.reset_pools()
        cold = network.dsms_submit("server")
        assert cold > warm

    def test_policy_load_advances_clock(self):
        network = SimulatedNetwork()
        before = network.clock.now()
        network.policy_load()
        assert network.clock.now() > before
