"""Tests for server, proxy, client and the direct-query baseline."""

import pytest

from repro.core import UserQuery, stream_policy
from repro.framework.client import ClientInterface
from repro.framework.direct import DirectQuerySystem
from repro.framework.messages import StreamRequestMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request


def deploy(cache_enabled=True, enforce_single_access=False):
    network = SimulatedNetwork()
    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=enforce_single_access,
        allow_partial_results=True,
    )
    proxy = Proxy(server, network, cache_enabled=cache_enabled)
    client = ClientInterface(proxy, network)
    graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
    server.load_policy(stream_policy("p1", "weather", graph, subject="LTA"))
    return network, server, proxy, client


class TestServer:
    def test_policy_load_time(self):
        network, server, _, _ = deploy()
        delay = server.load_policy(
            stream_policy(
                "p2", "weather",
                QueryGraph("weather").append(FilterOperator("windspeed > 1")),
                subject="NEA",
            )
        )
        assert 0.05 < delay < 0.6

    def test_permit_response(self):
        _, server, _, _ = deploy()
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        response, timing = server.process(message)
        assert response.ok
        assert response.handle_uri.startswith("stream://")
        assert timing.pdp >= 0
        assert timing.dsms_submit > 0

    def test_denied_response_not_exception(self):
        _, server, _, _ = deploy()
        message = StreamRequestMessage(Request.simple("nobody", "weather"), None)
        response, _ = server.process(message)
        assert not response.ok
        assert response.error_kind == "denied"

    def test_nr_response(self):
        _, server, _, _ = deploy()
        query = UserQuery("weather", filter_condition="rainrate < 2")
        message = StreamRequestMessage(Request.simple("LTA", "weather"), query)
        response, _ = server.process(message)
        assert response.error_kind == "nr"

    def test_concurrent_response_when_enforced(self):
        _, server, _, _ = deploy(enforce_single_access=True)
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        first, _ = server.process(message)
        assert first.ok
        second, _ = server.process(message)
        assert second.error_kind == "concurrent"


class TestProxyCache:
    def test_hit_skips_server(self):
        _, server, proxy, _ = deploy()
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        first = proxy.process(message)
        second = proxy.process(message)
        assert not first.cache_hit and second.cache_hit
        assert second.response.handle_uri == first.response.handle_uri
        assert server.requests_processed == 1
        assert proxy.hit_rate == 0.5

    def test_hit_is_faster(self):
        network, _, proxy, _ = deploy()
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        start = network.clock.now()
        proxy.process(message)
        miss_time = network.clock.now() - start
        start = network.clock.now()
        proxy.process(message)
        hit_time = network.clock.now() - start
        assert hit_time < miss_time / 2

    def test_different_queries_do_not_collide(self):
        _, server, proxy, _ = deploy()
        plain = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        custom = StreamRequestMessage(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate > 50"),
        )
        proxy.process(plain)
        result = proxy.process(custom)
        assert not result.cache_hit
        assert server.requests_processed == 2

    def test_errors_not_cached(self):
        _, server, proxy, _ = deploy()
        message = StreamRequestMessage(Request.simple("nobody", "weather"), None)
        proxy.process(message)
        result = proxy.process(message)
        assert not result.cache_hit
        assert server.requests_processed == 2

    def test_cache_disabled(self):
        _, server, proxy, _ = deploy(cache_enabled=False)
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        proxy.process(message)
        result = proxy.process(message)
        assert not result.cache_hit
        assert server.requests_processed == 2

    def test_revoked_handle_not_served_from_cache(self):
        _, server, proxy, _ = deploy()
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        first = proxy.process(message)
        server.instance.remove_policy("p1")
        result = proxy.process(message)
        assert not result.cache_hit
        assert result.response.handle_uri != first.response.handle_uri

    def test_lru_eviction(self):
        network, server, proxy, _ = deploy()
        proxy.cache_capacity = 1
        for subject, policy_id in (("NEA", "p-nea"), ("PUB", "p-pub")):
            graph = QueryGraph("weather").append(FilterOperator("rainrate > 1"))
            server.load_policy(
                stream_policy(policy_id, "weather", graph, subject=subject)
            )
        lta = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        nea = StreamRequestMessage(Request.simple("NEA", "weather"), None)
        proxy.process(lta)
        proxy.process(nea)   # evicts lta
        assert not proxy.process(lta).cache_hit

    def test_invalidate(self):
        _, _, proxy, _ = deploy()
        message = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        proxy.process(message)
        proxy.invalidate()
        assert not proxy.process(message).cache_hit


class TestClient:
    def test_trace_recorded(self):
        network, _, _, client = deploy()
        response, trace = client.request_stream(Request.simple("LTA", "weather"))
        assert response.ok
        assert trace.total > 0
        assert trace.network > 0
        assert trace.outcome == "ok"
        assert client.metrics.traces == [trace]

    def test_breakdown_sums_below_total(self):
        _, _, _, client = deploy()
        _, trace = client.request_stream(Request.simple("LTA", "weather"))
        assert trace.pdp + trace.query_graph + trace.dsms_submit <= trace.total + 1e-6

    def test_denied_trace(self):
        _, _, _, client = deploy()
        response, trace = client.request_stream(Request.simple("nobody", "weather"))
        assert not response.ok
        assert trace.outcome == "denied"


class TestDirectQuery:
    SCRIPT = (
        "CREATE OUTPUT STREAM output;\n"
        "SELECT * FROM weather WHERE rainrate > 5 INTO output;\n"
    )

    def test_submit_registers_query(self):
        network, server, _, _ = deploy()
        direct = DirectQuerySystem(server.instance.engine, network)
        response, trace = direct.submit(self.SCRIPT)
        assert response.ok
        assert trace.system == "direct"
        assert trace.pdp == 0.0
        server.instance.engine.lookup(response.handle_uri)

    def test_bad_script_is_error_response(self):
        network, server, _, _ = deploy()
        direct = DirectQuerySystem(server.instance.engine, network)
        response, trace = direct.submit("SELECT FROM nothing")
        assert not response.ok
        assert trace.outcome == "error"

    def test_direct_faster_than_exacml(self):
        network, server, proxy, client = deploy()
        direct = DirectQuerySystem(server.instance.engine, network)
        # Warm both DSMS connection pools first.
        for _ in range(6):
            direct.submit(self.SCRIPT)
            client.request_stream(Request.simple("LTA", "weather"))
        proxy.cache_enabled = False
        _, direct_trace = direct.submit(self.SCRIPT)
        _, exacml_trace = client.request_stream(Request.simple("LTA", "weather"))
        assert direct_trace.total < exacml_trace.total
