"""Tests for framework message types and payload accounting."""

from repro.core.user_query import UserQuery
from repro.framework.messages import (
    DirectQueryMessage,
    PolicyLoadMessage,
    StreamRequestMessage,
    StreamResponseMessage,
)
from repro.xacml.request import Request


class TestStreamRequestMessage:
    def test_payload_grows_with_query(self):
        request = Request.simple("LTA", "weather")
        bare = StreamRequestMessage(request, None)
        with_query = StreamRequestMessage(
            request, UserQuery("weather", filter_condition="rainrate > 50")
        )
        assert with_query.payload_bytes() > bare.payload_bytes() > 0

    def test_cache_key_components(self):
        request = Request.simple("LTA", "weather")
        bare = StreamRequestMessage(request, None)
        assert "LTA" in bare.cache_key()
        assert "weather" in bare.cache_key()

    def test_cache_key_distinguishes_subject(self):
        first = StreamRequestMessage(Request.simple("LTA", "weather"), None)
        second = StreamRequestMessage(Request.simple("NEA", "weather"), None)
        assert first.cache_key() != second.cache_key()

    def test_cache_key_distinguishes_query(self):
        request = Request.simple("LTA", "weather")
        first = StreamRequestMessage(request, None)
        second = StreamRequestMessage(
            request, UserQuery("weather", filter_condition="rainrate > 50")
        )
        third = StreamRequestMessage(
            request, UserQuery("weather", filter_condition="rainrate > 51")
        )
        assert len({first.cache_key(), second.cache_key(), third.cache_key()}) == 3

    def test_identical_requests_share_key(self):
        first = StreamRequestMessage(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate > 50"),
        )
        second = StreamRequestMessage(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate > 50"),
        )
        assert first.cache_key() == second.cache_key()


class TestStreamResponseMessage:
    def test_ok_semantics(self):
        assert StreamResponseMessage("stream://h/q1").ok
        assert not StreamResponseMessage(None, "denied", "no policy").ok

    def test_payload_floor(self):
        assert StreamResponseMessage("x").payload_bytes() >= 64

    def test_error_payload_counts_detail(self):
        short = StreamResponseMessage(None, "nr", "x" * 10)
        long = StreamResponseMessage(None, "nr", "x" * 5000)
        assert long.payload_bytes() > short.payload_bytes()


class TestOtherMessages:
    def test_policy_load_payload(self):
        message = PolicyLoadMessage("<Policy/>" * 10)
        assert message.payload_bytes() == len("<Policy/>") * 10

    def test_direct_query_payload(self):
        script = "SELECT * FROM w WHERE x > 1 INTO o;"
        assert DirectQueryMessage(script).payload_bytes() == len(script)
