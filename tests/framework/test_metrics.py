"""Tests for metrics, summaries and CDFs."""

import pytest

from repro.framework.metrics import (
    MetricsCollector,
    RequestTrace,
    cdf_points,
    percentile,
    summarize,
)


def trace(total, system="exacml+", seq=1, pdp=0.001, graph=0.001, submit=0.1,
          network=0.2, cache_hit=False, outcome="ok"):
    return RequestTrace(seq, system, total, pdp, graph, submit, network,
                        cache_hit, outcome)


class TestSummaries:
    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == 2.5
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.p50 == 2.5

    def test_summarize_empty(self):
        assert summarize([]).count == 0

    def test_percentile_interpolation(self):
        ordered = [0.0, 10.0]
        assert percentile(ordered, 0.5) == 5.0
        assert percentile(ordered, 0.9) == 9.0

    def test_percentile_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_cdf_points(self):
        points = cdf_points([3.0, 1.0, 2.0])
        assert points == [(1.0, 1 / 3), (2.0, 2 / 3), (3.0, 1.0)]


class TestCollector:
    def build(self):
        collector = MetricsCollector()
        collector.add(trace(0.2, system="direct"))
        collector.add(trace(0.4, system="exacml+"))
        collector.add(trace(0.6, system="exacml+"))
        collector.add(trace(9.9, system="exacml+", outcome="denied"))
        return collector

    def test_totals_filter_outcome_and_system(self):
        collector = self.build()
        assert collector.totals("exacml+") == [0.4, 0.6]
        assert collector.totals("direct") == [0.2]
        assert len(collector.totals()) == 3

    def test_by_system(self):
        grouped = self.build().by_system()
        assert set(grouped) == {"direct", "exacml+"}
        assert len(grouped["exacml+"]) == 3

    def test_network_and_submit_shares(self):
        collector = MetricsCollector()
        collector.add(trace(1.0, network=0.6, submit=0.3))
        assert collector.network_share("exacml+") == pytest.approx(0.6)
        assert collector.submit_share("exacml+") == pytest.approx(0.3)

    def test_cache_hit_rate(self):
        collector = MetricsCollector()
        collector.add(trace(0.1, system="exacml+cache", cache_hit=True))
        collector.add(trace(0.5, system="exacml+cache", cache_hit=False))
        assert collector.cache_hit_rate() == 0.5

    def test_ascii_cdf_renders(self):
        rendered = self.build().ascii_cdf(["direct", "exacml+"])
        assert "direct" in rendered
        assert "0.50" in rendered

    def test_cdf_monotone(self):
        collector = self.build()
        points = collector.cdf("exacml+")
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
