"""End-to-end coverage of the sharded XACML+ deployment (PR 4).

The framework layer must behave identically whether the data server
hosts a single-store PDP or the sharded pair: same handles out, same
cache behaviour at the proxy, and — the part sharding makes
non-trivial — the same end-to-end revocation guarantees, now flowing
through the invalidation bus (graph withdrawal first, proxy handle
purge after, one logical event per mutation regardless of how many
shards replicate the policy).
"""

import pytest

from repro.core import stream_policy
from repro.framework.messages import StreamRequestMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request
from repro.xacml.sharding import ShardedPDP, ShardedPolicyStore

SHARD_MODES = (None, 4)


def weather_graph(threshold=5):
    return QueryGraph("weather").append(FilterOperator(f"rainrate > {threshold}"))


def deploy(pdp_shards, subjects=("LTA",)):
    network = SimulatedNetwork()
    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
        pdp_shards=pdp_shards,
    )
    for subject in subjects:
        server.load_policy(
            stream_policy(f"p:{subject}", "weather", weather_graph(), subject=subject)
        )
    return server, Proxy(server, network)


def request_for(subject):
    return StreamRequestMessage(Request.simple(subject, "weather"), None)


class TestShardedDeployment:
    def test_sharded_instance_uses_sharded_pair(self):
        server, _ = deploy(pdp_shards=4)
        assert isinstance(server.instance.store, ShardedPolicyStore)
        assert isinstance(server.instance.pdp, ShardedPDP)
        assert server.instance.pdp.n_shards == 4

    @pytest.mark.parametrize("pdp_shards", SHARD_MODES)
    def test_grant_hit_and_revocation_parity(self, pdp_shards):
        server, proxy = deploy(pdp_shards)
        first = proxy.process(request_for("LTA"))
        assert first.response.ok
        assert proxy.process(request_for("LTA")).cache_hit
        server.remove_policy("p:LTA")
        denied = proxy.process(request_for("LTA"))
        assert not denied.cache_hit
        assert not denied.response.ok and denied.response.error_kind == "denied"
        assert server.instance.engine.active_queries() == []

    @pytest.mark.parametrize("pdp_shards", SHARD_MODES)
    def test_update_revokes_and_redecides(self, pdp_shards):
        server, proxy = deploy(pdp_shards)
        first = proxy.process(request_for("LTA"))
        assert first.response.ok
        server.update_policy(
            stream_policy("p:LTA", "weather", weather_graph(9), subject="NEA")
        )
        denied = proxy.process(request_for("LTA"))
        assert not denied.response.ok and denied.response.error_kind == "denied"
        granted = proxy.process(request_for("NEA"))
        assert granted.response.ok
        assert granted.response.handle_uri != first.response.handle_uri

    @pytest.mark.parametrize("pdp_shards", SHARD_MODES)
    def test_proxy_purges_dead_handles_proactively(self, pdp_shards):
        server, proxy = deploy(pdp_shards, subjects=("LTA", "NEA"))
        proxy.process(request_for("LTA"))
        proxy.process(request_for("NEA"))
        assert len(proxy._cache) == 2
        server.remove_policy("p:LTA")
        # The bus/store event purged LTA's dead entry immediately — no
        # lookup needed — while NEA's live entry stayed warm.
        assert len(proxy._cache) == 1
        assert proxy.proactive_invalidations == 1
        assert proxy.process(request_for("NEA")).cache_hit

    def test_one_bus_event_per_mutation_despite_replication(self):
        from repro.xacml.policy import Policy, Rule, Target
        from repro.xacml.response import Effect

        server, _ = deploy(pdp_shards=4)
        store = server.instance.store
        events = []
        store.add_listener(
            lambda event, policy: events.append((event, policy.policy_id))
        )
        # A literal stream policy lives on exactly one shard...
        server.load_policy(
            stream_policy("p:ANY", "weather", weather_graph(), subject="ANY")
        )
        assert len(store.placement_of("p:ANY")) == 1
        # ...while a subject-only target (wildcard resource) replicates
        # to all four — yet both produce exactly one logical event.
        wildcard = Policy(
            "p:WILD",
            target=Target.for_ids(subject="ANY"),
            rules=[Rule("p:WILD:r", Effect.PERMIT)],
        )
        server.load_policy(wildcard)
        assert store.placement_of("p:WILD") == frozenset(range(4))
        assert events == [("loaded", "p:ANY"), ("loaded", "p:WILD")]
        assert store.stats()["replicated"] == 1

    def test_linear_scan_and_sharding_are_mutually_exclusive(self):
        from repro.core import XacmlPlusInstance

        with pytest.raises(ValueError):
            XacmlPlusInstance(pdp_use_index=False, pdp_shards=4)

    def test_partitioner_wires_through_server(self):
        network = SimulatedNetwork()
        engine = StreamEngine()
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        server = DataServer(
            network,
            engine=engine,
            enforce_single_access=False,
            allow_partial_results=True,
            pdp_shards=4,
            pdp_partitioner="subject",
        )
        store = server.instance.store
        assert store.partitioner.name == "subject"
        # The Table-3 shape: a subject-keyed stream policy (wildcard
        # resource under the paper's stream targets is rare, but the
        # subject literal is what places it) lands on one shard, not 4.
        server.load_policy(
            stream_policy("p:LTA", "weather", weather_graph(), subject="LTA")
        )
        proxy = Proxy(server, network)
        result = proxy.process(request_for("LTA"))
        assert result.response.ok

    def test_partitioner_requires_sharding(self):
        from repro.core import XacmlPlusInstance

        with pytest.raises(ValueError):
            XacmlPlusInstance(pdp_partitioner="subject")

    def test_detached_proxy_stops_observing(self):
        server, proxy = deploy(pdp_shards=4, subjects=("LTA", "NEA"))
        proxy.process(request_for("LTA"))
        proxy.detach()
        server.remove_policy("p:LTA")
        # No proactive purge after detach; revalidation still protects.
        assert proxy.proactive_invalidations == 0
        result = proxy.process(request_for("LTA"))
        assert not result.cache_hit and not result.response.ok
