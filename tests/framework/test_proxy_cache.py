"""Proxy handle-cache unit tests and end-to-end revocation coverage.

Directly exercises the pieces the seed never tested: the proxy's
hit/miss counters, LRU capacity eviction, and the live-handle
revalidation path — plus the end-to-end guarantee that a withdrawn
handle is never served from the proxy cache and a stale decision is
never served from the PDP cache after a policy load/update/remove.
"""

import pytest

from repro.core import stream_policy
from repro.framework.messages import StreamRequestMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request


def weather_graph(threshold=5):
    return QueryGraph("weather").append(FilterOperator(f"rainrate > {threshold}"))


def deploy(cache_capacity=1024, subjects=("LTA",)):
    network = SimulatedNetwork()
    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
    )
    for subject in subjects:
        server.load_policy(
            stream_policy(f"p:{subject}", "weather", weather_graph(), subject=subject)
        )
    proxy = Proxy(server, network, cache_capacity=cache_capacity)
    return server, proxy


def request_for(subject):
    return StreamRequestMessage(Request.simple(subject, "weather"), None)


class TestCounters:
    def test_miss_then_hit(self):
        server, proxy = deploy()
        first = proxy.process(request_for("LTA"))
        assert not first.cache_hit and first.response.ok
        second = proxy.process(request_for("LTA"))
        assert second.cache_hit
        assert second.response.handle_uri == first.response.handle_uri
        assert (proxy.hits, proxy.misses) == (1, 1)
        assert proxy.hit_rate == 0.5
        # The hit is answered from the proxy: no proxy↔server wire time,
        # and the server never saw the second request.
        assert second.network_seconds == 0.0
        assert server.requests_processed == 1

    def test_denied_responses_not_cached(self):
        server, proxy = deploy()
        result = proxy.process(request_for("intruder"))
        assert not result.response.ok
        again = proxy.process(request_for("intruder"))
        assert not again.cache_hit
        assert proxy.misses == 2

    def test_cache_disabled(self):
        network = SimulatedNetwork()
        engine = StreamEngine()
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        server = DataServer(network, engine=engine, enforce_single_access=False,
                            allow_partial_results=True)
        server.load_policy(stream_policy("p:LTA", "weather", weather_graph(),
                                         subject="LTA"))
        proxy = Proxy(server, network, cache_enabled=False)
        proxy.process(request_for("LTA"))
        result = proxy.process(request_for("LTA"))
        assert not result.cache_hit
        assert (proxy.hits, proxy.misses) == (0, 2)


class TestLruEviction:
    def test_capacity_bound_evicts_least_recent(self):
        subjects = ("a", "b", "c")
        server, proxy = deploy(cache_capacity=2, subjects=subjects)
        for subject in subjects:      # c's insertion evicts a
            proxy.process(request_for(subject))
        assert len(proxy._cache) == 2
        result = proxy.process(request_for("a"))
        assert not result.cache_hit   # evicted → full round trip again
        assert proxy.misses == 4

    def test_hit_refreshes_recency(self):
        server, proxy = deploy(cache_capacity=2, subjects=("a", "b", "c"))
        proxy.process(request_for("a"))
        proxy.process(request_for("b"))
        proxy.process(request_for("a"))      # refresh a; b is now LRU
        proxy.process(request_for("c"))      # evicts b
        assert proxy.process(request_for("a")).cache_hit
        assert not proxy.process(request_for("b")).cache_hit

    def test_invalidate_clears_everything(self):
        server, proxy = deploy(subjects=("a", "b"))
        proxy.process(request_for("a"))
        proxy.process(request_for("b"))
        proxy.invalidate()
        assert not proxy.process(request_for("a")).cache_hit


class TestTimingAccounting:
    """The trace identity: virtual-clock time charged inside the proxy
    equals ``network_seconds + timing.compute_total`` — on misses, live
    hits, *and* the dead-handle fall-through, where the cache-probe leg
    used to be charged to the clock but dropped from the breakdown
    (mis-read as network time by anyone reconstructing shares)."""

    def charge(self, proxy, message):
        clock = proxy.network.clock
        before = clock.now()
        result = proxy.process(message)
        return clock.now() - before, result

    def assert_identity(self, elapsed, result):
        accounted = result.network_seconds + result.timing.compute_total
        assert elapsed == pytest.approx(accounted, rel=1e-12, abs=1e-12)

    def test_miss_and_live_hit_identities(self):
        server, proxy = deploy()
        elapsed, result = self.charge(proxy, request_for("LTA"))
        assert not result.cache_hit
        self.assert_identity(elapsed, result)
        elapsed, result = self.charge(proxy, request_for("LTA"))
        assert result.cache_hit
        assert result.network_seconds == 0.0
        self.assert_identity(elapsed, result)

    def test_dead_handle_fall_through_counts_probe_once(self):
        server, proxy = deploy()
        first = proxy.process(request_for("LTA"))
        server.instance.engine.withdraw(first.response.handle_uri)
        elapsed, result = self.charge(proxy, request_for("LTA"))
        # The probe found a dead handle and fell through to the server.
        assert not result.cache_hit and result.response.ok
        assert result.response.handle_uri != first.response.handle_uri
        # The probe leg appears exactly once, as compute (query_graph),
        # never as proxy↔server network time.
        self.assert_identity(elapsed, result)
        assert result.timing.query_graph > 0.0

    def test_probe_leg_not_charged_on_plain_miss(self):
        server, proxy = deploy(subjects=("LTA", "NEA"))
        proxy.process(request_for("LTA"))
        # A different key: the cache is probed-by-lookup only (no
        # liveness check, no clock charge) before the full round trip.
        elapsed, result = self.charge(proxy, request_for("NEA"))
        assert not result.cache_hit
        self.assert_identity(elapsed, result)


class TestRevalidation:
    def test_withdrawn_handle_not_served_from_cache(self):
        server, proxy = deploy()
        first = proxy.process(request_for("LTA"))
        # Revoke the live query behind the cached handle directly.
        server.instance.engine.withdraw(first.response.handle_uri)
        result = proxy.process(request_for("LTA"))
        assert not result.cache_hit
        assert result.response.ok
        assert result.response.handle_uri != first.response.handle_uri
        assert (proxy.hits, proxy.misses) == (0, 2)

    def test_policy_removal_revokes_through_proxy(self):
        """Remove the policy: the spawned graph is withdrawn, the decision
        cache flushed, and the next request is denied — the stale handle
        must never be served."""
        server, proxy = deploy()
        first = proxy.process(request_for("LTA"))
        assert first.response.ok
        server.remove_policy("p:LTA")
        result = proxy.process(request_for("LTA"))
        assert not result.cache_hit
        assert not result.response.ok
        assert result.response.error_kind == "denied"
        assert result.response.handle_uri is None
        # The engine really dropped the revoked query.
        assert server.instance.engine.active_queries() == []

    def test_policy_update_revokes_and_redecides(self):
        """Update the policy to a different subject: the old subject's
        cached permit (proxy handle + PDP decision) must both die."""
        server, proxy = deploy()
        first = proxy.process(request_for("LTA"))
        assert first.response.ok
        server.update_policy(
            stream_policy("p:LTA", "weather", weather_graph(9), subject="NEA")
        )
        denied = proxy.process(request_for("LTA"))
        assert not denied.response.ok and denied.response.error_kind == "denied"
        granted = proxy.process(request_for("NEA"))
        assert granted.response.ok
        assert granted.response.handle_uri != first.response.handle_uri

    def test_pdp_cache_flush_counted(self):
        server, proxy = deploy()
        pdp = server.instance.pdp
        proxy.process(request_for("LTA"))
        before = pdp.cache_invalidations
        server.remove_policy("p:LTA")
        assert pdp.cache_invalidations == before + 1
        assert pdp.cache_stats()["entries"] == 0
