"""End-to-end reproductions of the paper's worked examples.

- Example 1 / Figure 1 / Figure 4: NEA weather policy, LTA warning
  system, merged StreamSQL, live data flowing through the merged query;
- Example 2 (Section 3.4): multi-window reconstruction;
- Example 3 / Example 4 (Section 3.5): PR and NR detection;
- Section 3.3: revocation on policy removal, through the full framework
  (client → proxy → server), including the proxy cache path.
"""

import pytest

from repro.core import UserQuery, XacmlPlusInstance, stream_policy
from repro.errors import (
    EmptyResultWarning,
    PartialResultWarning,
)
from repro.framework.client import ClientInterface
from repro.framework.messages import StreamRequestMessage
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource
from repro.xacml.request import Request
from tests.conftest import build_lta_user_query, build_nea_policy_graph


class TestNeaLtaScenario:
    """The running example of Sections 2.2 and 3.1."""

    @pytest.fixture
    def instance(self):
        instance = XacmlPlusInstance(allow_partial_results=True)
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        instance.load_policy(
            stream_policy(
                "nea:weather:lta", "weather", build_nea_policy_graph(),
                subject="LTA",
                description="NEA weather policy for the LTA warning system",
            )
        )
        return instance

    def test_policy_only_request(self, instance):
        result = instance.request_stream(Request.simple("LTA", "weather"))
        instance.engine.push_many("weather", WeatherSource(seed=3).records(200))
        outputs = instance.engine.read(result.handle)
        assert outputs
        # Policy semantics: windows of 5 rainy tuples, advance 2.
        assert set(outputs[0].schema.attribute_names) == {
            "lastvalsamplingtime", "avgrainrate", "maxwindspeed",
        }
        assert all(t["avgrainrate"] > 5 for t in outputs)

    def test_customised_query_request(self, instance):
        result = instance.request_stream(
            Request.simple("LTA", "weather"), build_lta_user_query()
        )
        assert "rainrate > 50" in result.streamsql
        instance.engine.push_many("weather", WeatherSource(seed=3).records(400))
        outputs = instance.engine.read(result.handle)
        assert outputs
        assert all(t["avgrainrate"] > 50 for t in outputs)

    def test_merged_output_equals_manual_pipeline(self, instance):
        """The merged query must equal policy-then-user applied in sequence."""
        records = WeatherSource(seed=9).records(600)
        result = instance.request_stream(
            Request.simple("LTA", "weather"), build_lta_user_query()
        )
        instance.engine.push_many("weather", records)
        merged_outputs = instance.engine.read(result.handle)

        # Manual oracle: rainrate>50, then windows of 10 advance 2 of
        # (lastval samplingtime, avg rainrate).
        passed = [r for r in records if r["rainrate"] > 50]
        expected = []
        k = 0
        while k * 2 + 10 <= len(passed):
            window = passed[k * 2: k * 2 + 10]
            expected.append(
                (
                    window[-1]["samplingtime"],
                    sum(w["rainrate"] for w in window) / 10,
                )
            )
            k += 1
        got = [(t["lastvalsamplingtime"], t["avgrainrate"]) for t in merged_outputs]
        assert len(got) == len(expected)
        for (gt, gr), (et, er) in zip(got, expected):
            assert gt == et
            assert gr == pytest.approx(er)


class TestFullFrameworkFlow:
    """Client → proxy → server flow with cache and revocation."""

    @pytest.fixture
    def deployment(self):
        network = SimulatedNetwork()
        engine = StreamEngine()
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        server = DataServer(
            network, engine=engine,
            enforce_single_access=False, allow_partial_results=True,
        )
        proxy = Proxy(server, network)
        client = ClientInterface(proxy, network)
        server.load_policy(
            stream_policy(
                "nea:weather:lta", "weather", build_nea_policy_graph(),
                subject="LTA",
            )
        )
        return network, server, proxy, client

    def test_request_to_data_round_trip(self, deployment):
        _, server, _, client = deployment
        response, trace = client.request_stream(
            Request.simple("LTA", "weather"), build_lta_user_query()
        )
        assert response.ok
        server.instance.engine.push_many(
            "weather", WeatherSource(seed=3).records(400)
        )
        outputs = server.instance.engine.read(response.handle_uri)
        assert outputs

    def test_cached_handle_reuse(self, deployment):
        _, server, proxy, client = deployment
        first, _ = client.request_stream(Request.simple("LTA", "weather"))
        second, trace = client.request_stream(Request.simple("LTA", "weather"))
        assert trace.cache_hit
        assert second.handle_uri == first.handle_uri
        assert server.requests_processed == 1

    def test_revocation_reaches_cached_clients(self, deployment):
        _, server, proxy, client = deployment
        first, _ = client.request_stream(Request.simple("LTA", "weather"))
        server.instance.remove_policy("nea:weather:lta")
        # The engine no longer serves the revoked handle.
        from repro.errors import UnknownHandleError

        with pytest.raises(UnknownHandleError):
            server.instance.engine.read(first.handle_uri)
        # And the proxy does not serve the dead handle from cache; with
        # the policy gone the request is now denied.
        response, trace = client.request_stream(Request.simple("LTA", "weather"))
        assert not trace.cache_hit
        assert not response.ok
        assert response.error_kind == "denied"


class TestWarningScenarios:
    """Examples 3 and 4 driven through the full PEP."""

    def make_instance(self, policy_condition):
        from repro.streams.graph import QueryGraph
        from repro.streams.operators import FilterOperator
        from repro.streams.schema import Schema

        schema = Schema("s", [("a", "double"), ("b", "double")])
        instance = XacmlPlusInstance()
        instance.engine.register_input_stream("s", schema)
        graph = QueryGraph("s").append(FilterOperator(policy_condition))
        instance.load_policy(stream_policy("p", "s", graph, subject="u"))
        return instance

    def test_example3_pr(self):
        instance = self.make_instance("a > 8")
        with pytest.raises(PartialResultWarning):
            instance.request_stream(
                Request.simple("u", "s"), UserQuery("s", filter_condition="a > 5")
            )

    def test_example3_nr(self):
        instance = self.make_instance("a < 4")
        with pytest.raises(EmptyResultWarning):
            instance.request_stream(
                Request.simple("u", "s"), UserQuery("s", filter_condition="a > 5")
            )

    def test_example4_nr(self):
        instance = self.make_instance("(a > 20 AND a < 30) OR NOT (a != 40)")
        query = UserQuery("s", filter_condition="NOT (a >= 10) AND b = 20")
        with pytest.raises(EmptyResultWarning):
            instance.request_stream(Request.simple("u", "s"), query)

    def test_nr_differs_from_denial(self):
        """NR 'must be differed from the case where the user does not
        have access to the stream' — different exception types."""
        from repro.errors import AccessDeniedError

        instance = self.make_instance("a < 4")
        with pytest.raises(AccessDeniedError):
            instance.request_stream(Request.simple("intruder", "s"))
        with pytest.raises(EmptyResultWarning):
            instance.request_stream(
                Request.simple("u", "s"), UserQuery("s", filter_condition="a > 5")
            )
