"""End-to-end time-based windows and assorted edge cases."""

import pytest

from repro.core import UserQuery, XacmlPlusInstance, stream_policy
from repro.core.obligations import graph_to_obligations, obligations_to_graph
from repro.errors import AccessDeniedError, EmptyResultWarning
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect


def time_window_graph(size=300, step=300):
    """Aggregate weather into `size`-second windows."""
    return QueryGraph("weather").append(
        AggregateOperator(
            WindowSpec(WindowType.TIME, size, step),
            [
                AggregationSpec.parse("samplingtime:lastval"),
                AggregationSpec.parse("temperature:avg"),
            ],
        )
    )


class TestTimeWindowPolicies:
    def make_instance(self):
        instance = XacmlPlusInstance(allow_partial_results=True)
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        instance.load_policy(
            stream_policy("p-time", "weather", time_window_graph(), subject="u")
        )
        return instance

    def test_time_window_obligations_round_trip(self):
        obligations = graph_to_obligations(time_window_graph())
        rebuilt = obligations_to_graph(obligations, "weather")
        window = rebuilt.aggregate_operator.window
        assert window.window_type is WindowType.TIME
        assert window.size == 300

    def test_time_window_policy_flows_data(self):
        instance = self.make_instance()
        result = instance.request_stream(Request.simple("u", "weather"))
        assert "SECONDS" in result.streamsql
        # 30-second sampling: 300 s windows close every 10 tuples.
        instance.engine.push_many(
            "weather", WeatherSource(seed=3, interval_seconds=30.0).records(100)
        )
        outputs = instance.engine.read(result.handle)
        assert len(outputs) == 9  # 100 tuples → 9 fully closed windows
        assert all(0 < t["avgtemperature"] < 45 for t in outputs)

    def test_time_window_refinement(self):
        instance = self.make_instance()
        query = UserQuery(
            "weather",
            window=WindowSpec(WindowType.TIME, 600, 600),
            aggregations=["avg(temperature)"],
        )
        result = instance.request_stream(Request.simple("u", "weather"), query)
        assert result.merged_graph.aggregate_operator.window.size == 600

    def test_tuple_refinement_of_time_policy_rejected(self):
        instance = self.make_instance()
        query = UserQuery(
            "weather",
            window=WindowSpec(WindowType.TUPLE, 600, 600),
            aggregations=["avg(temperature)"],
        )
        with pytest.raises(EmptyResultWarning):
            instance.request_stream(Request.simple("u", "weather"), query)


class TestDenyPolicies:
    def test_explicit_deny_raises_with_decision(self):
        instance = XacmlPlusInstance()
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        instance.store.load(
            Policy(
                "deny-all",
                target=Target.for_ids(resource="weather"),
                rules=[Rule("r", Effect.DENY)],
            )
        )
        with pytest.raises(AccessDeniedError) as excinfo:
            instance.request_stream(Request.simple("anyone", "weather"))
        from repro.xacml.response import Decision

        assert excinfo.value.decision is Decision.DENY

    def test_deny_overrides_blacklist_wins(self):
        instance = XacmlPlusInstance()
        instance.pdp.combining = "deny-overrides"
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        instance.store.load(
            Policy(
                "blacklist",
                target=Target.for_ids(subject="banned", resource="weather"),
                rules=[Rule("r", Effect.DENY)],
            )
        )
        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        instance.load_policy(stream_policy("permit", "weather", graph))
        # Non-banned subject is permitted by the broad policy...
        instance.request_stream(Request.simple("ok-user", "weather"))
        # ...but the blacklist overrides for the banned subject.
        with pytest.raises(AccessDeniedError):
            instance.request_stream(Request.simple("banned", "weather"))


class TestBareRequestSemantics:
    def test_no_user_query_never_warns(self):
        """A bare request accepts the policy view; PR must not fire."""
        instance = XacmlPlusInstance()  # strict: allow_partial_results=False
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        from repro.streams.operators import MapOperator

        graph = QueryGraph("weather").append(MapOperator(["rainrate"]))
        instance.load_policy(stream_policy("p", "weather", graph, subject="u"))
        result = instance.request_stream(Request.simple("u", "weather"))
        assert result.warnings == []

    def test_empty_user_query_treated_as_bare(self):
        instance = XacmlPlusInstance()
        instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
        from repro.streams.operators import MapOperator

        graph = QueryGraph("weather").append(MapOperator(["rainrate"]))
        instance.load_policy(stream_policy("p", "weather", graph, subject="u"))
        result = instance.request_stream(
            Request.simple("u", "weather"), UserQuery("weather")
        )
        assert result.warnings == []


class TestEnginePushVariants:
    def test_push_stream_tuple_directly(self):
        from repro.streams.engine import StreamEngine
        from repro.streams.tuples import make_tuple

        engine = StreamEngine()
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        handle = engine.register_query(
            QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        )
        tup = make_tuple(WEATHER_SCHEMA, WeatherSource(seed=1).next_record())
        engine.push("weather", tup)
        assert engine.read(handle) in ([], [tup])
