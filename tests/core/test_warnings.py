"""Tests for NR/PR warning detection (Section 3.5)."""

import pytest

from repro.core.warnings_check import (
    check_aggregate_merge,
    check_filter_merge,
    check_map_merge,
    check_query_against_policy,
)
from repro.expr.satisfiability import PairVerdict
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)


def aggregate(size=5, step=2, window_type=WindowType.TUPLE, specs=("a:avg",)):
    return AggregateOperator(
        WindowSpec(window_type, size, step),
        [AggregationSpec.parse(s) for s in specs],
    )


class TestMapRules:
    def test_disjoint_nr(self):
        report = check_map_merge(MapOperator(["a"]), MapOperator(["b"]))
        assert report.verdict is PairVerdict.NR

    def test_differing_pr(self):
        report = check_map_merge(MapOperator(["a", "b"]), MapOperator(["a"]))
        assert report.verdict is PairVerdict.PR

    def test_equal_ok(self):
        assert check_map_merge(MapOperator(["a", "b"]), MapOperator(["b", "a"])) is None

    def test_policy_only_pr(self):
        report = check_map_merge(MapOperator(["a"]), None)
        assert report.verdict is PairVerdict.PR

    def test_user_only_ok(self):
        assert check_map_merge(None, MapOperator(["a"])) is None

    def test_neither_ok(self):
        assert check_map_merge(None, None) is None


class TestAggregateRules:
    """The six ordered rules of Section 3.5's aggregate check."""

    def test_rule1_size(self):
        report = check_aggregate_merge(aggregate(size=10), aggregate(size=5))
        assert report.verdict is PairVerdict.NR
        assert "size" in report.detail

    def test_rule2_step(self):
        report = check_aggregate_merge(aggregate(step=4), aggregate(step=2))
        assert report.verdict is PairVerdict.NR
        assert "step" in report.detail

    def test_rule3_type(self):
        report = check_aggregate_merge(
            aggregate(window_type=WindowType.TUPLE),
            aggregate(window_type=WindowType.TIME, size=10, step=5),
        )
        assert report.verdict is PairVerdict.NR
        assert "type" in report.detail

    def test_rule4_conflicting_functions_nr(self):
        report = check_aggregate_merge(
            aggregate(specs=("a:avg",)), aggregate(specs=("a:max",))
        )
        assert report.verdict is PairVerdict.NR

    def test_rule5_exact_match_silent(self):
        assert check_aggregate_merge(
            aggregate(specs=("a:avg", "b:max")), aggregate(specs=("a:avg",))
        ) is None

    def test_rule6_extra_attribute_pr(self):
        report = check_aggregate_merge(
            aggregate(specs=("a:avg",)), aggregate(specs=("a:avg", "b:max"))
        )
        assert report.verdict is PairVerdict.PR

    def test_mixed_conflict_and_match_pr(self):
        report = check_aggregate_merge(
            aggregate(specs=("a:avg", "b:max")),
            aggregate(specs=("a:avg", "b:min")),
        )
        assert report.verdict is PairVerdict.PR

    def test_policy_only_aggregation_pr(self):
        report = check_aggregate_merge(aggregate(), None)
        assert report.verdict is PairVerdict.PR

    def test_user_only_aggregation_ok(self):
        assert check_aggregate_merge(None, aggregate()) is None


class TestFilterRules:
    def test_example3_pr(self):
        """Policy a>8, user a>5 → PR (tuples 6,7,8 withheld)."""
        report = check_filter_merge(FilterOperator("a > 8"), FilterOperator("a > 5"))
        assert report.verdict is PairVerdict.PR

    def test_example3_nr(self):
        """Policy a<4, user a>5 → NR (nothing can satisfy both)."""
        report = check_filter_merge(FilterOperator("a < 4"), FilterOperator("a > 5"))
        assert report.verdict is PairVerdict.NR

    def test_user_tighter_ok(self):
        assert check_filter_merge(
            FilterOperator("a > 5"), FilterOperator("a > 8")
        ) is None

    def test_example4_nr(self):
        """Section 3.5 Example 4: both conjunctions contradictory → NR."""
        report = check_filter_merge(
            FilterOperator("(a > 20 AND a < 30) OR NOT (a != 40)"),
            FilterOperator("NOT (a >= 10) AND b = 20"),
        )
        assert report.verdict is PairVerdict.NR

    def test_disjunct_escape_hatch_no_alert(self):
        """One compatible disjunct clears the whole check (Step 3)."""
        assert check_filter_merge(
            FilterOperator("a > 100 OR b > 0"), FilterOperator("a < 50 AND b > 1")
        ) is None

    def test_missing_policy_filter_ok(self):
        assert check_filter_merge(None, FilterOperator("a > 5")) is None

    def test_missing_user_filter_ok(self):
        assert check_filter_merge(FilterOperator("a > 5"), None) is None

    def test_different_attributes_ok(self):
        assert check_filter_merge(
            FilterOperator("a > 5"), FilterOperator("b > 5")
        ) is None

    def test_string_conflict_nr(self):
        report = check_filter_merge(
            FilterOperator("city = 'sg'"), FilterOperator("city = 'kl'")
        )
        assert report.verdict is PairVerdict.NR


class TestWholeGraph:
    def test_multiple_findings_collected(self):
        policy = QueryGraph("s")
        policy.append(FilterOperator("a > 8"))
        policy.append(MapOperator(["a", "b"]))
        user = QueryGraph("s")
        user.append(FilterOperator("a > 5"))
        user.append(MapOperator(["a"]))
        reports = check_query_against_policy(policy, user)
        assert {r.operator for r in reports} == {"filter", "map"}
        assert all(r.verdict is PairVerdict.PR for r in reports)

    def test_clean_refinement_no_findings(self):
        policy = QueryGraph("s")
        policy.append(FilterOperator("a > 5"))
        policy.append(MapOperator(["a", "b"]))
        user = QueryGraph("s")
        user.append(FilterOperator("a > 8"))
        user.append(MapOperator(["a", "b"]))
        assert check_query_against_policy(policy, user) == []
