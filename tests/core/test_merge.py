"""Tests for the Section 3.1 query-graph merge rules."""

import pytest

from repro.core.merge import MergeOptions, merge_query_graphs
from repro.errors import MergeError, WindowRefinementError
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from tests.conftest import build_lta_user_query, build_nea_policy_graph


def merge(policy_graph, user_graph, **options):
    return merge_query_graphs(
        policy_graph, user_graph, schema=WEATHER_SCHEMA,
        options=MergeOptions(**options) if options else MergeOptions(),
    )


class TestPaperExample:
    """Figure 1 policy + Figure 4(a) user query → Figure 4(b) merged SQL."""

    def test_merged_structure(self):
        result = merge(
            build_nea_policy_graph(), build_lta_user_query().to_query_graph()
        )
        graph = result.graph
        assert [op.kind for op in graph.operators] == ["filter", "map", "aggregate"]
        # Filter simplification: rainrate>5 AND rainrate>50 → rainrate>50.
        assert graph.filter_operator.condition.to_condition_string() == "rainrate > 50"
        # Map keeps rainrate (intersection) + samplingtime (carrier).
        assert graph.map_operator.attribute_set() == {"rainrate", "samplingtime"}
        # Aggregation: user window, intersection of specs + time carrier.
        aggregate = graph.aggregate_operator
        assert aggregate.window == WindowSpec(WindowType.TUPLE, 10, 2)
        assert {s.to_obligation_value() for s in aggregate.aggregations} == {
            "samplingtime:lastval", "rainrate:avg",
        }

    def test_merged_graph_validates(self):
        result = merge(
            build_nea_policy_graph(), build_lta_user_query().to_query_graph()
        )
        out = result.graph.validate(WEATHER_SCHEMA)
        assert set(out.attribute_names) == {"lastvalsamplingtime", "avgrainrate"}

    def test_streamsql_matches_figure_4b(self):
        from repro.streams.streamsql.generator import generate_streamsql

        result = merge(
            build_nea_policy_graph(), build_lta_user_query().to_query_graph()
        )
        sql = generate_streamsql(result.graph)
        assert "WHERE rainrate > 50" in sql
        assert "SIZE 10 ADVANCE 2 TUPLES" in sql
        assert "lastval(samplingtime) AS lastvalsamplingtime" in sql
        assert "avg(rainrate) AS avgrainrate" in sql
        assert "windspeed" not in sql  # dropped: user did not ask for it


class TestFilterMerge:
    def test_conjunction(self):
        policy = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        user = QueryGraph("weather").append(FilterOperator("windspeed > 3"))
        result = merge(policy, user)
        condition = result.graph.filter_operator.condition.to_condition_string()
        assert "rainrate > 5" in condition and "windspeed > 3" in condition

    def test_simplification_example(self):
        """The paper's example: x>v1 AND x>v2 → x>v2 iff v2 >= v1."""
        policy = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        user = QueryGraph("weather").append(FilterOperator("rainrate > 50"))
        result = merge(policy, user)
        assert (
            result.graph.filter_operator.condition.to_condition_string()
            == "rainrate > 50"
        )

    def test_no_simplification_when_disabled(self):
        policy = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        user = QueryGraph("weather").append(FilterOperator("rainrate > 50"))
        result = merge(policy, user, simplify_filters=False)
        condition = result.graph.filter_operator.condition.to_condition_string()
        assert condition == "rainrate > 5 AND rainrate > 50"

    def test_one_sided(self):
        policy = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        result = merge(policy, QueryGraph("weather"))
        assert (
            result.graph.filter_operator.condition.to_condition_string()
            == "rainrate > 5"
        )

    def test_different_streams_rejected(self):
        with pytest.raises(MergeError):
            merge(QueryGraph("weather"), QueryGraph("gps"))


class TestMapMerge:
    def test_intersection_default(self):
        policy = QueryGraph("weather").append(MapOperator(["rainrate", "windspeed"]))
        user = QueryGraph("weather").append(MapOperator(["windspeed", "humidity"]))
        result = merge(policy, user)
        assert result.graph.map_operator.attribute_set() == {"windspeed"}

    def test_union_reproduces_paper_text(self):
        policy = QueryGraph("weather").append(MapOperator(["rainrate", "windspeed"]))
        user = QueryGraph("weather").append(MapOperator(["windspeed", "humidity"]))
        result = merge(policy, user, map_semantics="union")
        assert result.graph.map_operator.attribute_set() == {
            "rainrate", "windspeed", "humidity",
        }

    def test_disjoint_projections_fail(self):
        policy = QueryGraph("weather").append(MapOperator(["rainrate"]))
        user = QueryGraph("weather").append(MapOperator(["humidity"]))
        with pytest.raises(MergeError):
            merge(policy, user)

    def test_unknown_semantics(self):
        policy = QueryGraph("weather").append(MapOperator(["rainrate"]))
        user = QueryGraph("weather").append(MapOperator(["rainrate"]))
        with pytest.raises(MergeError):
            merge(policy, user, map_semantics="xor")

    def test_user_narrowing_without_policy_map(self):
        user = QueryGraph("weather").append(MapOperator(["rainrate"]))
        result = merge(QueryGraph("weather"), user)
        assert result.graph.map_operator.attribute_set() == {"rainrate"}


class TestAggregateMerge:
    def policy_aggregate(self, size=5, step=2):
        return QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size, step),
                [
                    AggregationSpec.parse("samplingtime:lastval"),
                    AggregationSpec.parse("rainrate:avg"),
                ],
            )
        )

    def user_aggregate(self, size=10, step=2, specs=("rainrate:avg",)):
        return QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, size, step),
                [AggregationSpec.parse(s) for s in specs],
            )
        )

    def test_user_window_geometry_wins(self):
        result = merge(self.policy_aggregate(), self.user_aggregate(size=12, step=3))
        assert result.graph.aggregate_operator.window == WindowSpec(
            WindowType.TUPLE, 12, 3
        )

    def test_smaller_user_window_rejected(self):
        with pytest.raises(WindowRefinementError):
            merge(self.policy_aggregate(size=5), self.user_aggregate(size=4))

    def test_smaller_user_step_rejected(self):
        with pytest.raises(WindowRefinementError):
            merge(self.policy_aggregate(step=2), self.user_aggregate(step=1))

    def test_type_mismatch_rejected(self):
        user = QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TIME, 10, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
        with pytest.raises(WindowRefinementError):
            merge(self.policy_aggregate(), user)

    def test_intersection_of_specs(self):
        result = merge(
            self.policy_aggregate(),
            self.user_aggregate(specs=("rainrate:avg", "windspeed:max")),
        )
        keys = {s.to_obligation_value()
                for s in result.graph.aggregate_operator.aggregations}
        # windspeed:max is not permitted by policy → dropped; the time
        # carrier samplingtime:lastval is kept.
        assert keys == {"samplingtime:lastval", "rainrate:avg"}

    def test_empty_intersection_fails(self):
        policy = QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
        with pytest.raises(MergeError):
            merge(policy, self.user_aggregate(specs=("rainrate:max",)))

    def test_carrier_disabled(self):
        result = merge(
            self.policy_aggregate(), self.user_aggregate(),
            keep_policy_time_attribute=False,
        )
        keys = {s.to_obligation_value()
                for s in result.graph.aggregate_operator.aggregations}
        assert keys == {"rainrate:avg"}

    def test_policy_only_aggregate_kept(self):
        result = merge(self.policy_aggregate(), QueryGraph("weather"))
        assert result.graph.aggregate_operator.window.size == 5

    def test_user_only_aggregate_kept(self):
        result = merge(QueryGraph("weather"), self.user_aggregate())
        assert result.graph.aggregate_operator.window.size == 10


class TestPassthroughMerge:
    def test_both_empty(self):
        result = merge(QueryGraph("weather"), QueryGraph("weather"))
        assert result.graph.is_passthrough
        assert result.warnings == []
