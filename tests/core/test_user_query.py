"""Tests for customised user queries (Figure 4(a))."""

import pytest

from repro.core.user_query import UserQuery
from repro.errors import PolicyParseError
from repro.streams.operators import WindowSpec, WindowType

#: The paper's Figure 4(a) document (typos normalised).
FIGURE_4A = """
<UserQuery>
  <Stream name="weather" />
  <Filter>
    <FilterCondition>
      RainRate > 50
    </FilterCondition>
  </Filter>
  <Map>
    <Attribute>RainRate</Attribute>
  </Map>
  <Aggregation>
    <WindowType>tuple</WindowType>
    <WindowSize>10</WindowSize>
    <WindowStep>2</WindowStep>
    <Attribute>avg(RainRate)</Attribute>
  </Aggregation>
</UserQuery>
"""


class TestParseFigure4a:
    def test_parses(self):
        query = UserQuery.from_xml(FIGURE_4A)
        assert query.stream == "weather"
        assert query.filter_condition.to_condition_string() == "rainrate > 50"
        assert query.map_attributes == ("RainRate",)
        assert query.window == WindowSpec(WindowType.TUPLE, 10, 2)
        assert [s.to_obligation_value() for s in query.aggregations] == ["rainrate:avg"]

    def test_to_query_graph(self):
        graph = UserQuery.from_xml(FIGURE_4A).to_query_graph()
        assert [op.kind for op in graph.operators] == ["filter", "map", "aggregate"]
        assert graph.source == "weather"

    def test_xml_round_trip(self):
        query = UserQuery.from_xml(FIGURE_4A)
        again = UserQuery.from_xml(query.to_xml())
        assert again.stream == query.stream
        assert (
            again.filter_condition.to_condition_string()
            == query.filter_condition.to_condition_string()
        )
        assert again.window == query.window
        assert again.aggregations == query.aggregations


class TestConstruction:
    def test_empty_query(self):
        query = UserQuery("weather")
        assert query.is_empty
        assert query.to_query_graph().is_passthrough

    def test_string_condition_parsed(self):
        query = UserQuery("weather", filter_condition="rainrate > 5")
        assert query.filter_condition.to_condition_string() == "rainrate > 5"

    def test_aggregation_needs_window_and_specs(self):
        with pytest.raises(PolicyParseError):
            UserQuery("weather", window=WindowSpec(WindowType.TUPLE, 5, 2))
        with pytest.raises(PolicyParseError):
            UserQuery("weather", aggregations=["avg(rainrate)"])

    def test_needs_stream(self):
        with pytest.raises(PolicyParseError):
            UserQuery("")


class TestParseErrors:
    def test_not_xml(self):
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml("nope")

    def test_wrong_root(self):
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml("<Query/>")

    def test_missing_stream(self):
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml("<UserQuery><Filter><FilterCondition>a > 1</FilterCondition></Filter></UserQuery>")

    def test_empty_filter(self):
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml(
                "<UserQuery><Stream name='s'/><Filter></Filter></UserQuery>"
            )

    def test_empty_map(self):
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml(
                "<UserQuery><Stream name='s'/><Map></Map></UserQuery>"
            )

    def test_aggregation_missing_size(self):
        bad = (
            "<UserQuery><Stream name='s'/><Aggregation>"
            "<WindowType>tuple</WindowType><WindowStep>2</WindowStep>"
            "<Attribute>avg(x)</Attribute></Aggregation></UserQuery>"
        )
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml(bad)

    def test_aggregation_non_integer_size(self):
        bad = (
            "<UserQuery><Stream name='s'/><Aggregation>"
            "<WindowType>tuple</WindowType><WindowSize>big</WindowSize>"
            "<WindowStep>2</WindowStep>"
            "<Attribute>avg(x)</Attribute></Aggregation></UserQuery>"
        )
        with pytest.raises(PolicyParseError):
            UserQuery.from_xml(bad)
