"""Tests for the accountability audit log (paper future work, Section 6)."""

import json

import pytest

from repro.core.audit import GENESIS, AuditedXacmlPlus, AuditLog
from repro.core import UserQuery, XacmlPlusInstance, stream_policy
from repro.errors import (
    AccessDeniedError,
    ConcurrentAccessError,
    EmptyResultWarning,
)
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request


class TestAuditLog:
    def test_chain_starts_at_genesis(self):
        log = AuditLog()
        entry = log.record("decision", "u", "s", decision="Permit")
        assert entry.previous_hash == GENESIS
        assert entry.sequence == 1

    def test_chain_links(self):
        log = AuditLog()
        first = log.record("a")
        second = log.record("b")
        assert second.previous_hash == first.entry_hash
        assert log.verify_chain()

    def test_tampering_detected_value(self):
        log = AuditLog()
        log.record("decision", "u", "s", decision="Permit")
        log.record("grant", "u", "s", handle="stream://h/q1")
        forged = log._entries[0]._replace(detail={"decision": "Deny"})
        log._entries[0] = forged
        assert not log.verify_chain()

    def test_tampering_detected_removal(self):
        log = AuditLog()
        for kind in ("a", "b", "c"):
            log.record(kind)
        del log._entries[1]
        assert not log.verify_chain()

    def test_tampering_detected_reorder(self):
        log = AuditLog()
        log.record("a")
        log.record("b")
        log._entries.reverse()
        assert not log.verify_chain()

    def test_filtering(self):
        log = AuditLog()
        log.record("decision", "u1", "s1")
        log.record("decision", "u2", "s1")
        log.record("grant", "u1", "s2")
        assert len(log.entries(kind="decision")) == 2
        assert len(log.entries(subject="u1")) == 2
        assert len(log.entries(kind="grant", subject="u1")) == 1
        assert len(log.entries(resource="s1")) == 2

    def test_export_import_round_trip(self):
        log = AuditLog()
        log.record("decision", "u", "s", decision="Permit")
        log.record("grant", "u", "s", handle="stream://h/q1")
        loaded = AuditLog.import_json(log.export_json())
        assert len(loaded) == 2
        assert loaded.verify_chain()

    def test_imported_tampered_log_fails(self):
        log = AuditLog()
        log.record("decision", "u", "s", decision="Permit")
        records = json.loads(log.export_json())
        records[0]["detail"]["decision"] = "Deny"
        loaded = AuditLog.import_json(json.dumps(records))
        assert not loaded.verify_chain()


def make_audited():
    instance = XacmlPlusInstance()
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
    audited = AuditedXacmlPlus(instance)
    graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
    audited.load_policy(stream_policy("p1", "weather", graph, subject="LTA"))
    return audited


class TestAuditedInstance:
    def test_policy_load_recorded(self):
        audited = make_audited()
        events = audited.log.entries(kind="policy-loaded")
        assert len(events) == 1
        assert events[0].detail["policy_id"] == "p1"

    def test_grant_records_decision_and_sql(self):
        audited = make_audited()
        result = audited.request_stream(Request.simple("LTA", "weather"))
        decisions = audited.log.entries(kind="decision", subject="LTA")
        grants = audited.log.entries(kind="grant", subject="LTA")
        assert decisions[0].detail["decision"] == "Permit"
        assert grants[0].detail["handle"] == result.handle.uri
        assert "WHERE rainrate > 5" in grants[0].detail["streamsql"]
        assert audited.log.verify_chain()

    def test_denial_recorded(self):
        audited = make_audited()
        with pytest.raises(AccessDeniedError):
            audited.request_stream(Request.simple("nobody", "weather"))
        decisions = audited.log.entries(kind="decision", subject="nobody")
        assert decisions[0].detail["decision"] == "NotApplicable"

    def test_nr_warning_recorded(self):
        audited = make_audited()
        with pytest.raises(EmptyResultWarning):
            audited.request_stream(
                Request.simple("LTA", "weather"),
                UserQuery("weather", filter_condition="rainrate < 2"),
            )
        warnings = audited.log.entries(kind="warning", subject="LTA")
        assert warnings[0].detail["warning_kind"] == "NR"

    def test_concurrent_recorded(self):
        audited = make_audited()
        audited.request_stream(Request.simple("LTA", "weather"))
        with pytest.raises(ConcurrentAccessError):
            audited.request_stream(Request.simple("LTA", "weather"))
        warnings = audited.log.entries(kind="warning", subject="LTA")
        assert warnings[0].detail["warning_kind"] == "concurrent-access"

    def test_revocation_recorded_on_remove(self):
        audited = make_audited()
        result = audited.request_stream(Request.simple("LTA", "weather"))
        audited.remove_policy("p1")
        revocations = audited.log.entries(kind="revocation")
        assert revocations[0].detail["detail_handle"] == result.handle.uri
        assert audited.log.entries(kind="policy-removed")
        assert audited.log.verify_chain()

    def test_release_recorded(self):
        audited = make_audited()
        result = audited.request_stream(Request.simple("LTA", "weather"))
        audited.release_stream(result.handle)
        assert audited.log.entries(kind="release")

    def test_wrapper_delegates(self):
        audited = make_audited()
        assert audited.engine is audited.instance.engine
        assert len(audited.store) == 1
