"""Tests for the stream-obligation vocabulary (Table 1 / Figure 2)."""

import pytest

from repro.core.obligations import (
    FILTER_OBLIGATION,
    MAP_OBLIGATION,
    WINDOW_OBLIGATION,
    graph_to_obligations,
    obligations_to_graph,
    stream_policy,
)
from repro.errors import ObligationError
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator, WindowSpec, WindowType
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.attributes import AttributeValue
from repro.xacml.request import Request
from repro.xacml.response import AttributeAssignment, Effect, Obligation
from tests.conftest import build_nea_policy_graph


class TestEncodeDecode:
    def test_nea_graph_round_trip(self):
        graph = build_nea_policy_graph()
        obligations = graph_to_obligations(graph)
        assert [o.obligation_id for o in obligations] == [
            FILTER_OBLIGATION, MAP_OBLIGATION, WINDOW_OBLIGATION,
        ]
        rebuilt = obligations_to_graph(obligations, "weather")
        assert [op.kind for op in rebuilt.operators] == ["filter", "map", "aggregate"]
        assert (
            rebuilt.filter_operator.condition.to_condition_string()
            == graph.filter_operator.condition.to_condition_string()
        )
        assert rebuilt.map_operator.attribute_set() == graph.map_operator.attribute_set()
        assert rebuilt.aggregate_operator.window == graph.aggregate_operator.window
        assert {s.key for s in rebuilt.aggregate_operator.aggregations} == {
            s.key for s in graph.aggregate_operator.aggregations
        }

    def test_partial_graph(self):
        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        obligations = graph_to_obligations(graph)
        assert len(obligations) == 1
        rebuilt = obligations_to_graph(obligations, "weather")
        assert len(rebuilt) == 1

    def test_empty_graph_no_obligations(self):
        assert graph_to_obligations(QueryGraph("weather")) == []
        rebuilt = obligations_to_graph([], "weather")
        assert rebuilt.is_passthrough

    def test_canonical_order_regardless_of_input(self):
        graph = build_nea_policy_graph()
        obligations = list(reversed(graph_to_obligations(graph)))
        rebuilt = obligations_to_graph(obligations, "weather")
        assert [op.kind for op in rebuilt.operators] == ["filter", "map", "aggregate"]

    def test_table1_long_ids_accepted(self):
        obligation = Obligation(
            "exacml:obligation:stream-filtering",
            Effect.PERMIT,
            [AttributeAssignment(
                "exacml:obligation:stream-filter-condition-id",
                AttributeValue.string("rainrate > 5"),
            )],
        )
        graph = obligations_to_graph([obligation], "weather")
        assert graph.filter_operator is not None

    def test_unrelated_obligations_ignored(self):
        audit = Obligation("custom:audit", Effect.PERMIT)
        graph = obligations_to_graph([audit], "weather")
        assert graph.is_passthrough


class TestDecodeErrors:
    def test_duplicate_filter(self):
        obligations = graph_to_obligations(
            QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        ) * 2
        with pytest.raises(ObligationError):
            obligations_to_graph(obligations, "weather")

    def test_filter_without_condition(self):
        with pytest.raises(ObligationError):
            obligations_to_graph(
                [Obligation(FILTER_OBLIGATION, Effect.PERMIT)], "weather"
            )

    def test_map_without_attributes(self):
        with pytest.raises(ObligationError):
            obligations_to_graph(
                [Obligation(MAP_OBLIGATION, Effect.PERMIT)], "weather"
            )

    def test_window_missing_geometry(self):
        obligation = Obligation(
            WINDOW_OBLIGATION,
            Effect.PERMIT,
            [AttributeAssignment(
                "exacml:obligation:stream-window-attr-id",
                AttributeValue.string("rainrate:avg"),
            )],
        )
        with pytest.raises(ObligationError):
            obligations_to_graph([obligation], "weather")

    def test_window_without_aggregations(self):
        obligation = Obligation(
            WINDOW_OBLIGATION,
            Effect.PERMIT,
            [
                AttributeAssignment(
                    "exacml:obligation:stream-window-size-id",
                    AttributeValue.integer(5),
                ),
                AttributeAssignment(
                    "exacml:obligation:stream-window-step-id",
                    AttributeValue.integer(2),
                ),
                AttributeAssignment(
                    "exacml:obligation:stream-window-type-id",
                    AttributeValue.string("tuple"),
                ),
            ],
        )
        with pytest.raises(ObligationError):
            obligations_to_graph([obligation], "weather")


class TestStreamPolicy:
    def test_policy_permits_subject(self):
        graph = build_nea_policy_graph()
        policy = stream_policy("p", "weather", graph, subject="LTA")
        from repro.xacml.response import Decision

        assert policy.evaluate(Request.simple("LTA", "weather")) is Decision.PERMIT
        assert (
            policy.evaluate(Request.simple("X", "weather"))
            is Decision.NOT_APPLICABLE
        )

    def test_policy_obligations_rebuild_graph(self):
        graph = build_nea_policy_graph()
        policy = stream_policy("p", "weather", graph)
        rebuilt = obligations_to_graph(policy.obligations, "weather")
        rebuilt.validate(WEATHER_SCHEMA)
        assert len(rebuilt) == 3
