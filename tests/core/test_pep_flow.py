"""Tests for the PEP workflow, access registry and graph manager."""

import pytest

from repro.core import UserQuery, XacmlPlusInstance, stream_policy
from repro.core.access_registry import AccessRegistry
from repro.errors import (
    AccessDeniedError,
    ConcurrentAccessError,
    EmptyResultWarning,
    PartialResultWarning,
    UnknownHandleError,
)
from repro.streams.graph import QueryGraph
from repro.streams.handles import StreamHandle
from repro.streams.operators import FilterOperator, WindowSpec, WindowType
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request
from tests.conftest import build_lta_user_query, build_nea_policy_graph


def make_instance(**kwargs):
    instance = XacmlPlusInstance(**kwargs)
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
    return instance


def load_simple_policy(instance, subject="LTA", condition="rainrate > 5",
                       policy_id="p1"):
    graph = QueryGraph("weather").append(FilterOperator(condition))
    policy = stream_policy(policy_id, "weather", graph, subject=subject)
    instance.load_policy(policy)
    return policy


class TestAccessRegistry:
    def test_acquire_conflict(self):
        registry = AccessRegistry()
        handle = StreamHandle("h", "q1")
        registry.acquire("u", "s", handle)
        with pytest.raises(ConcurrentAccessError):
            registry.acquire("u", "s", StreamHandle("h", "q2"))

    def test_check_without_binding(self):
        registry = AccessRegistry()
        registry.check("u", "s")
        registry.acquire("u", "s", StreamHandle("h", "q1"))
        with pytest.raises(ConcurrentAccessError):
            registry.check("u", "S")  # stream names case-insensitive

    def test_release_enables_reacquire(self):
        registry = AccessRegistry()
        handle = StreamHandle("h", "q1")
        registry.acquire("u", "s", handle)
        assert registry.release("u", "s") == handle
        registry.acquire("u", "s", StreamHandle("h", "q2"))

    def test_release_handle(self):
        registry = AccessRegistry()
        handle = StreamHandle("h", "q1")
        registry.acquire("u", "s", handle)
        registry.acquire("u", "other", handle)
        released = registry.release_handle(handle)
        assert len(released) == 2
        assert registry.active_count() == 0

    def test_different_subjects_independent(self):
        registry = AccessRegistry()
        registry.acquire("u1", "s", StreamHandle("h", "q1"))
        registry.acquire("u2", "s", StreamHandle("h", "q2"))

    def test_enforcement_off(self):
        registry = AccessRegistry(enforce=False)
        registry.acquire("u", "s", StreamHandle("h", "q1"))
        registry.acquire("u", "s", StreamHandle("h", "q2"))  # no error


class TestPepWorkflow:
    def test_permit_returns_handle_and_sql(self):
        instance = make_instance()
        load_simple_policy(instance)
        result = instance.request_stream(Request.simple("LTA", "weather"))
        assert result.handle.uri.startswith("stream://")
        assert "WHERE rainrate > 5" in result.streamsql
        assert result.response.policy_id == "p1"
        assert result.timings.total > 0

    def test_deny_unknown_subject(self):
        instance = make_instance()
        load_simple_policy(instance)
        with pytest.raises(AccessDeniedError):
            instance.request_stream(Request.simple("stranger", "weather"))

    def test_deny_unknown_stream_resource(self):
        instance = make_instance()
        load_simple_policy(instance)
        with pytest.raises(AccessDeniedError):
            instance.request_stream(Request.simple("LTA", "gps"))

    def test_user_query_stream_mismatch(self):
        instance = make_instance()
        load_simple_policy(instance)
        with pytest.raises(AccessDeniedError):
            instance.request_stream(
                Request.simple("LTA", "weather"), UserQuery("gps")
            )

    def test_single_access_enforced(self):
        instance = make_instance()
        load_simple_policy(instance)
        instance.request_stream(Request.simple("LTA", "weather"))
        with pytest.raises(ConcurrentAccessError):
            instance.request_stream(Request.simple("LTA", "weather"))

    def test_release_allows_reaccess(self):
        instance = make_instance()
        load_simple_policy(instance)
        result = instance.request_stream(Request.simple("LTA", "weather"))
        instance.release_stream(result.handle)
        instance.request_stream(Request.simple("LTA", "weather"))

    def test_nr_blocks_registration(self):
        instance = make_instance()
        load_simple_policy(instance, condition="rainrate < 4")
        query = UserQuery("weather", filter_condition="rainrate > 5")
        with pytest.raises(EmptyResultWarning) as excinfo:
            instance.request_stream(Request.simple("LTA", "weather"), query)
        assert excinfo.value.conflicts
        assert len(instance.engine.active_queries()) == 0

    def test_pr_blocks_by_default(self):
        instance = make_instance()
        load_simple_policy(instance, condition="rainrate > 8")
        query = UserQuery("weather", filter_condition="rainrate > 5")
        with pytest.raises(PartialResultWarning):
            instance.request_stream(Request.simple("LTA", "weather"), query)

    def test_pr_allowed_when_configured(self):
        instance = make_instance(allow_partial_results=True)
        load_simple_policy(instance, condition="rainrate > 8")
        query = UserQuery("weather", filter_condition="rainrate > 5")
        result = instance.request_stream(Request.simple("LTA", "weather"), query)
        assert any(w.is_pr for w in result.warnings)

    def test_merged_query_executes(self):
        instance = make_instance(allow_partial_results=True)
        graph = build_nea_policy_graph()
        instance.load_policy(stream_policy("nea", "weather", graph, subject="LTA"))
        result = instance.request_stream(
            Request.simple("LTA", "weather"), build_lta_user_query()
        )
        from repro.streams.sources import WeatherSource

        instance.engine.push_many("weather", WeatherSource(seed=3).records(400))
        outputs = instance.engine.read(result.handle)
        assert outputs
        assert set(outputs[0].schema.attribute_names) == {
            "lastvalsamplingtime", "avgrainrate",
        }
        # Every emitted average is over tuples with rainrate > 50.
        assert all(t["avgrainrate"] > 50 for t in outputs)


class TestRevocation:
    def test_policy_removal_withdraws_queries(self):
        instance = make_instance()
        load_simple_policy(instance)
        result = instance.request_stream(Request.simple("LTA", "weather"))
        instance.remove_policy("p1")
        with pytest.raises(UnknownHandleError):
            instance.engine.read(result.handle)
        assert instance.graph_manager.revocations == 1
        # The registry binding is released too: a fresh policy allows access.
        load_simple_policy(instance, policy_id="p2")
        instance.request_stream(Request.simple("LTA", "weather"))

    def test_policy_update_withdraws_queries(self):
        instance = make_instance()
        policy = load_simple_policy(instance)
        result = instance.request_stream(Request.simple("LTA", "weather"))
        instance.update_policy(policy)
        with pytest.raises(UnknownHandleError):
            instance.engine.read(result.handle)

    def test_other_policies_unaffected(self):
        instance = make_instance()
        load_simple_policy(instance, subject="LTA", policy_id="p1")
        load_simple_policy(instance, subject="NEA", policy_id="p2")
        lta = instance.request_stream(Request.simple("LTA", "weather"))
        nea = instance.request_stream(Request.simple("NEA", "weather"))
        instance.remove_policy("p1")
        with pytest.raises(UnknownHandleError):
            instance.engine.read(lta.handle)
        instance.engine.read(nea.handle)  # still live

    def test_manager_bookkeeping(self):
        instance = make_instance()
        load_simple_policy(instance)
        result = instance.request_stream(Request.simple("LTA", "weather"))
        manager = instance.graph_manager
        assert manager.active_count() == 1
        spawned = manager.for_handle(result.handle)
        assert spawned.policy_id == "p1"
        assert spawned.subject == "LTA"
        assert manager.spawned_by("p1") == [spawned]
        manager.withdraw(result.handle)
        assert manager.active_count() == 0
        assert manager.spawned_by("p1") == []


class TestWindowRefinementThroughPep:
    def test_finer_user_window_is_nr_error(self):
        instance = make_instance()
        from repro.streams.operators import AggregateOperator, AggregationSpec

        graph = QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
        instance.load_policy(stream_policy("p-agg", "weather", graph, subject="LTA"))
        query = UserQuery(
            "weather",
            window=WindowSpec(WindowType.TUPLE, 3, 2),
            aggregations=["rainrate:avg"],
        )
        with pytest.raises(EmptyResultWarning):
            instance.request_stream(Request.simple("LTA", "weather"), query)
