"""Tests for the Section 3.4 multi-window reconstruction attack."""

import pytest

from repro.core.attack import (
    MultiWindowAttack,
    reconstruct_from_windows,
)
from repro.errors import ConcurrentAccessError, ReproError


def sum_windows(values, size, step):
    """Brute-force sum-aggregation oracle: windows [k·step, k·step+size)."""
    outputs = []
    k = 0
    while k * step + size <= len(values):
        outputs.append(sum(values[k * step: k * step + size]))
        k += 1
    return outputs


class TestReconstructionArithmetic:
    def test_paper_example2(self):
        """Sizes 3, 4, 5, step 2 recover a3, a4, a5, ..."""
        values = list(range(40))
        streams = [sum_windows(values, size, 2) for size in (3, 4, 5)]
        recovered = reconstruct_from_windows(streams, base_size=3, step=2)
        assert recovered  # non-empty
        for index, value in recovered.items():
            assert value == values[index]
        assert min(recovered) == 3
        # Everything from a3 to the horizon is contiguous.
        indices = sorted(recovered)
        assert indices == list(range(indices[0], indices[-1] + 1))

    def test_general_parameters(self):
        """The paper's induction: sizes N..N+M, step M, recover from a_N."""
        values = [v * 7 - 3 for v in range(60)]
        for base, step in ((4, 3), (5, 1), (2, 4)):
            streams = [
                sum_windows(values, base + extra, step)
                for extra in range(step + 1)
            ]
            recovered = reconstruct_from_windows(streams, base, step)
            for index, value in recovered.items():
                assert value == values[index], (base, step, index)
            assert min(recovered) == base

    def test_wrong_stream_count_rejected(self):
        values = list(range(20))
        streams = [sum_windows(values, size, 2) for size in (3, 4)]
        with pytest.raises(ReproError):
            reconstruct_from_windows(streams, base_size=3, step=2)

    def test_float_values(self):
        values = [v * 0.25 for v in range(30)]
        streams = [sum_windows(values, size, 2) for size in (3, 4, 5)]
        recovered = reconstruct_from_windows(streams, 3, 2)
        for index, value in recovered.items():
            assert value == pytest.approx(values[index])


class TestEndToEndAttack:
    def test_attack_succeeds_without_guard(self):
        victim = MultiWindowAttack.build_victim_instance(enforce_single_access=False)
        attack = MultiWindowAttack(victim)
        values = list(range(50))
        recovered = attack.run(values)
        assert len(recovered) >= 40
        for index, value in recovered.items():
            assert value == values[index]

    def test_attack_blocked_with_guard(self):
        victim = MultiWindowAttack.build_victim_instance(enforce_single_access=True)
        attack = MultiWindowAttack(victim)
        assert attack.is_blocked()

    def test_guard_raises_on_full_run(self):
        victim = MultiWindowAttack.build_victim_instance(enforce_single_access=True)
        attack = MultiWindowAttack(victim)
        with pytest.raises(ConcurrentAccessError):
            attack.run(list(range(50)))

    def test_unguarded_instance_reports_not_blocked(self):
        victim = MultiWindowAttack.build_victim_instance(enforce_single_access=False)
        assert not MultiWindowAttack(victim).is_blocked()

    def test_attack_with_different_geometry(self):
        victim = MultiWindowAttack.build_victim_instance(
            enforce_single_access=False, base_size=4, step=3
        )
        attack = MultiWindowAttack(victim, base_size=4, step=3)
        values = list(range(60))
        recovered = attack.run(values)
        assert recovered
        for index, value in recovered.items():
            assert value == values[index]
