"""Chaos differential suite: served decisions under injected faults
must equal fault-free serial replay once retries settle.

This is PR 4's differential-equivalence discipline extended *through*
crashes: N async clients fire seeded mixed op scripts (disjoint
namespaces, as in ``tests/serving/test_served_equivalence.py``) at a
real :class:`AsyncDataServer` while the fault harness kills shard
workers mid-traffic, drops invalidation mirrors, garbles wire frames
and stalls readers.  The decision stream each client observes — after
client-side retries — must be identical to the same scripts replayed
serially against an identical, fault-free in-process deployment.

Covered for ``pdp_shards ∈ {None, 4}`` (the acceptance matrix):

- worker kills under mutation churn, ``"fallback"`` mode — crashes
  invisible, decisions identical (the fallback PDP reads the same
  authoritative store);
- worker kills under mutation churn, ``"error"`` mode — clients see
  retryable errors and settle to identical decisions by retrying;
- dropped invalidation mirrors — converted to kill + supervised
  rebuild, so no worker ever serves from a silently-stale replica;
- garbled frames and stalled readers on the unsharded path — contained
  to an in-order error reply / a backpressure stall, never corrupting
  neighbouring replies.

Seeding: fixed by default (CI chaos-smoke is reproducible); the
nightly deep pass sets ``CHAOS_DEEP=1`` for longer scripts at an
unpinned seed, printed as ``CHAOS_SEED=...`` for replay via the
``CHAOS_SEED`` env var.
"""

import asyncio
import os
import random

import pytest

from repro.core import stream_policy
from repro.serving import AsyncClient, AsyncDataServer
from repro.serving.wire import (
    AckReply,
    ErrorReply,
    EvaluateOp,
    EvaluateReply,
    IngestOp,
    LoadOp,
    PingOp,
    RevokeOp,
    UpdateOp,
    encode_frame,
    encode_message,
)
from repro.framework.network import SimulatedNetwork
from repro.framework.server import DataServer
from repro.streams.engine import StreamEngine
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.testing.faults import (
    MirrorChaos,
    WorkerKiller,
    garble_payload,
    stalled_pipeline,
)
from repro.xacml.request import Request
from repro.xacml.sharding import ProcessShardPool
from repro.xacml.xml_io import policy_to_xml, request_to_xml

DEEP = bool(os.environ.get("CHAOS_DEEP"))
if "CHAOS_SEED" in os.environ:
    SEED = int(os.environ["CHAOS_SEED"])
elif DEEP:
    SEED = random.SystemRandom().randrange(2**32)
else:
    SEED = 20120917  # the paper's conference year/month, stable across runs
print(f"CHAOS_SEED={SEED}")

N_CLIENTS = 4
SCRIPT_LENGTH = 150 if DEEP else 40
N_SHARDS = 4
TIMEOUT = 240.0 if DEEP else 120.0

#: Client retry policy generous enough to outlast any supervised
#: restart (backoff 0.01 s, doubling, cap 2 s ⇒ recovery in tens of
#: milliseconds; ten retries span seconds).
RETRY_KW = dict(max_retries=10, retry_base_delay=0.02, retry_max_delay=0.25)


def client_stream(client_id):
    return f"weather_c{client_id}"


def weather_graph(threshold, stream):
    return QueryGraph(stream).append(FilterOperator(f"rainrate > {threshold}"))


def make_env(pdp_shards):
    network = SimulatedNetwork()
    engine = StreamEngine()
    for client_id in range(N_CLIENTS):
        engine.register_input_stream(client_stream(client_id), WEATHER_SCHEMA)
    return DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
        pdp_shards=pdp_shards,
    )


def build_script(client_id, rng, length=SCRIPT_LENGTH):
    """One client's seeded op sequence, confined to its namespace."""
    stream = client_stream(client_id)
    subjects = [f"c{client_id}:s{j}" for j in range(4)]
    live = []
    next_policy = 0
    ops = []

    def policy_for(pid, subject, threshold):
        return stream_policy(
            pid, stream, weather_graph(threshold, stream), subject=subject
        )

    def load_op():
        nonlocal next_policy
        pid = f"c{client_id}:p{next_policy}"
        next_policy += 1
        live.append(pid)
        return LoadOp(
            policy_to_xml(policy_for(pid, rng.choice(subjects), rng.randint(1, 9)))
        )

    ops.append(load_op())
    ops.append(load_op())
    for _ in range(length):
        kind = rng.choice(
            ["evaluate"] * 4 + ["load", "update", "revoke", "ingest"]
        )
        if kind == "evaluate":
            subject = rng.choice(subjects + [f"c{client_id}:stranger"])
            ops.append(
                EvaluateOp(
                    request_to_xml(Request.simple(subject, stream)),
                    None,
                    rng.random() < 0.5,
                )
            )
        elif kind == "load":
            ops.append(load_op())
        elif kind == "update":
            pid = rng.choice(live) if live and rng.random() < 0.8 else (
                f"c{client_id}:ghost"
            )
            ops.append(
                UpdateOp(
                    policy_to_xml(
                        policy_for(pid, rng.choice(subjects), rng.randint(1, 9))
                    )
                )
            )
        elif kind == "revoke":
            if live and rng.random() < 0.8:
                pid = live.pop(rng.randrange(len(live)))
            else:
                pid = f"c{client_id}:ghost"
            ops.append(RevokeOp(pid))
        else:
            records = [
                {
                    "samplingtime": i,
                    "temperature": rng.uniform(20, 35),
                    "humidity": rng.uniform(40, 95),
                    "solarradiation": rng.uniform(0, 800),
                    "rainrate": rng.uniform(0, 12),
                    "windspeed": rng.uniform(0, 20),
                    "winddirection": rng.randrange(360),
                    "barometer": rng.uniform(980, 1040),
                }
                for i in range(rng.randint(1, 5))
            ]
            ops.append(IngestOp(stream, records))
    return ops


def build_scripts(seed=SEED):
    return [
        build_script(client_id, random.Random((seed, client_id).__hash__()))
        for client_id in range(N_CLIENTS)
    ]


def signature(reply):
    """The decision-relevant projection of one reply (no handle URIs)."""
    if isinstance(reply, EvaluateReply):
        return (
            "evaluate",
            reply.ok,
            reply.decision,
            reply.policy_id,
            reply.error_kind,
            reply.handle_uri is not None,
        )
    if isinstance(reply, AckReply):
        return ("ack", reply.op, reply.detail, reply.count)
    assert isinstance(reply, ErrorReply)
    return ("error", reply.error_kind)


async def run_inprocess_serial(scripts, pdp_shards):
    """Fault-free serial reference: the exact served op semantics,
    one op at a time, on a never-started front-end, no pool."""
    reference = AsyncDataServer(make_env(pdp_shards))
    outcomes = []
    for script in scripts:
        outcomes.append([signature(await reference.execute(op)) for op in script])
    return outcomes


async def run_served_with_pool(scripts, pool_kwargs, chaos_counters):
    """Drive the scripts concurrently against a server whose PDP work
    runs on a supervised ProcessShardPool under fault injection.
    Returns (per-client signatures, pool health snapshot)."""
    server = make_env(N_SHARDS)
    pool = ProcessShardPool(
        server.instance.store,
        restart_backoff=0.01,
        **pool_kwargs,
    )
    try:
        async with AsyncDataServer(server, pool=pool) as front:

            async def drive(script):
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, **RETRY_KW
                )
                async with client:
                    replies = [await client.call(op) for op in script]
                    return replies, client.retries_performed

            outcomes = await asyncio.gather(*(drive(s) for s in scripts))
        health = pool.health()
    finally:
        pool.close()
    chaos_counters["worker_restarts"] += health["worker_restarts"]
    chaos_counters["fallback_evaluations"] += health["fallback_evaluations"]
    chaos_counters["client_retries"] += sum(r for _, r in outcomes)
    return [[signature(reply) for reply in replies] for replies, _ in outcomes], health


def assert_streams_equal(served, serial):
    assert served == serial
    flat = [sig for replies in served for sig in replies]
    evaluates = [sig for sig in flat if sig[0] == "evaluate"]
    assert any(sig[1] for sig in evaluates), "no permit ever granted"
    assert any(not sig[1] for sig in evaluates), "no denial ever produced"


#: One kill early and one late per shard — whichever shards the
#: partition actually routes this seed's traffic to will trigger.
KILL_SCHEDULE = {
    shard_id: [5 + 3 * shard_id, 40 + 5 * shard_id]
    for shard_id in range(N_SHARDS)
}


class TestShardedChaos:
    def test_kills_under_churn_fallback_mode(self, chaos_counters):
        scripts = build_scripts()
        killer = WorkerKiller(KILL_SCHEDULE)

        async def scenario():
            served, health = await run_served_with_pool(
                scripts,
                dict(on_unavailable="fallback", fault_injector=killer),
                chaos_counters,
            )
            serial = await run_inprocess_serial(scripts, N_SHARDS)
            return served, serial, health

        served, serial, health = asyncio.run(
            asyncio.wait_for(scenario(), TIMEOUT)
        )
        assert killer.kills, "the schedule never fired — no chaos happened"
        chaos_counters["worker_kills"] += len(killer.kills)
        assert health["worker_restarts"] >= 1
        assert_streams_equal(served, serial)

    def test_kills_under_churn_error_mode_retries_settle(self, chaos_counters):
        scripts = build_scripts()
        killer = WorkerKiller(KILL_SCHEDULE)

        async def scenario():
            served, health = await run_served_with_pool(
                scripts,
                dict(on_unavailable="error", fault_injector=killer),
                chaos_counters,
            )
            serial = await run_inprocess_serial(scripts, N_SHARDS)
            return served, serial, health

        served, serial, health = asyncio.run(
            asyncio.wait_for(scenario(), TIMEOUT)
        )
        assert killer.kills, "the schedule never fired — no chaos happened"
        chaos_counters["worker_kills"] += len(killer.kills)
        assert health["worker_restarts"] >= 1
        # Retries settled: not a single unavailable error leaked into
        # the decision stream, which equals the fault-free reference.
        flat = [sig for replies in served for sig in replies]
        assert not any(
            sig[0] == "error" and sig[1] == "ShardUnavailableError"
            for sig in flat
        )
        assert_streams_equal(served, serial)

    def test_dropped_mirrors_never_serve_stale_decisions(self, chaos_counters):
        scripts = build_scripts()
        chaos = MirrorChaos(seed=SEED, drop_rate=0.15, max_drops=3)

        async def scenario():
            served, health = await run_served_with_pool(
                scripts,
                dict(on_unavailable="fallback", fault_injector=chaos),
                chaos_counters,
            )
            serial = await run_inprocess_serial(scripts, N_SHARDS)
            return served, serial, health

        served, serial, health = asyncio.run(
            asyncio.wait_for(scenario(), TIMEOUT)
        )
        assert chaos.dropped >= 1, "drop rate never fired — no chaos happened"
        chaos_counters["mirror_drops"] += chaos.dropped
        chaos_counters["worker_kills"] += chaos.dropped
        # A dropped mirror converts to a supervised rebuild, never to a
        # stale decision: equivalence with the fault-free reference is
        # exactly the no-staleness property.
        assert health["worker_restarts"] >= 1
        assert_streams_equal(served, serial)

    def test_delayed_mirrors_only_stretch_latency(self, chaos_counters):
        scripts = build_scripts()
        chaos = MirrorChaos(seed=SEED, delay=0.002)

        async def scenario():
            served, health = await run_served_with_pool(
                scripts,
                dict(on_unavailable="fallback", fault_injector=chaos),
                chaos_counters,
            )
            serial = await run_inprocess_serial(scripts, N_SHARDS)
            return served, serial, health

        served, serial, health = asyncio.run(
            asyncio.wait_for(scenario(), TIMEOUT)
        )
        assert chaos.delayed >= 1
        assert health["worker_restarts"] == 0  # delays are not faults
        assert_streams_equal(served, serial)


class TestUnshardedChaos:
    def test_garbled_frames_are_contained_to_their_slot(self, chaos_counters):
        script = build_scripts()[0]
        garbled = 0

        async def scenario():
            nonlocal garbled
            server = make_env(None)
            async with AsyncDataServer(server) as front:
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, **RETRY_KW
                )
                async with client:
                    replies = []
                    for index, op in enumerate(script):
                        if index % 7 == 3:
                            # An intact frame with an undecodable
                            # payload, mid-pipeline.
                            _, payload = (
                                encode_message(0, PingOp())[:4],
                                encode_message(0, PingOp())[4:],
                            )
                            client._writer.write(
                                encode_frame(garble_payload(payload))
                            )
                            await client._writer.drain()
                            error = await client._read_reply(-1)
                            assert isinstance(error, ErrorReply)
                            assert error.error_kind == "TransportError"
                            assert not error.retryable
                            garbled += 1
                        replies.append(await client.call(op))
                    return [signature(reply) for reply in replies]

        served = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        serial = asyncio.run(
            asyncio.wait_for(run_inprocess_serial([script], None), TIMEOUT)
        )[0]
        assert garbled >= 1
        chaos_counters["garbled_frames"] += garbled
        assert served == serial

    def test_stalled_reader_preserves_order_and_decisions(self):
        scripts = build_scripts()[:2]

        async def scenario():
            server = make_env(None)
            async with AsyncDataServer(
                server, write_high_water=2048, sndbuf=4096
            ) as front:

                async def drive(script):
                    client = await AsyncClient.connect(
                        "127.0.0.1", front.port, rcvbuf=4096
                    )
                    async with client:
                        replies = []
                        for start in range(0, len(script), 15):
                            replies.extend(
                                await stalled_pipeline(
                                    client, script[start:start + 15], stall=0.2
                                )
                            )
                        return [signature(reply) for reply in replies]

                return await asyncio.gather(*(drive(s) for s in scripts))

        served = asyncio.run(asyncio.wait_for(scenario(), TIMEOUT))
        serial = asyncio.run(
            asyncio.wait_for(run_inprocess_serial(scripts, None), TIMEOUT)
        )
        assert served == serial


def test_seeded_scripts_are_reproducible():
    assert build_scripts() == build_scripts()
