"""Chaos-suite plumbing: shared counters and the CI report artifact.

Every chaos test folds its fault/recovery observations into
:data:`COUNTERS`; when ``CHAOS_REPORT=<path>`` is set (the CI
chaos-smoke job sets it), the session teardown writes them as a JSON
artifact, so each PR records how many worker kills and supervised
restarts its chaos pass actually exercised.
"""

import json
import os

import pytest

COUNTERS = {
    "worker_kills": 0,
    "worker_restarts": 0,
    "fallback_evaluations": 0,
    "client_retries": 0,
    "mirror_drops": 0,
    "garbled_frames": 0,
}


@pytest.fixture
def chaos_counters():
    return COUNTERS


@pytest.fixture(scope="session", autouse=True)
def chaos_report():
    yield
    path = os.environ.get("CHAOS_REPORT")
    if path:
        with open(path, "w") as handle:
            json.dump(COUNTERS, handle, indent=2, sort_keys=True)
            handle.write("\n")
