"""Tests for the exception hierarchy and the public API surface."""

import pytest

import repro
from repro import errors


class TestHierarchy:
    def test_single_root(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, errors.ReproError) or obj is errors.ReproError

    @pytest.mark.parametrize(
        "child,parent",
        [
            (errors.SchemaError, errors.StreamError),
            (errors.UnknownAttributeError, errors.SchemaError),
            (errors.GraphError, errors.StreamError),
            (errors.EngineError, errors.StreamError),
            (errors.UnknownStreamError, errors.EngineError),
            (errors.UnknownHandleError, errors.EngineError),
            (errors.StreamSQLError, errors.StreamError),
            (errors.ExpressionSyntaxError, errors.ExpressionError),
            (errors.ExpressionTypeError, errors.ExpressionError),
            (errors.PolicyParseError, errors.XacmlError),
            (errors.PolicyStoreError, errors.XacmlError),
            (errors.ObligationError, errors.XacmlError),
            (errors.AccessDeniedError, errors.AccessControlError),
            (errors.ConcurrentAccessError, errors.AccessControlError),
            (errors.MergeError, errors.AccessControlError),
            (errors.WindowRefinementError, errors.MergeError),
            (errors.EmptyResultWarning, errors.AccessControlError),
            (errors.PartialResultWarning, errors.AccessControlError),
            (errors.TransportError, errors.FrameworkError),
        ],
    )
    def test_parentage(self, child, parent):
        assert issubclass(child, parent)

    def test_catch_all_with_root(self):
        with pytest.raises(errors.ReproError):
            raise errors.WindowRefinementError("finer than policy")


class TestErrorPayloads:
    def test_concurrent_access_carries_context(self):
        error = errors.ConcurrentAccessError("LTA", "weather")
        assert error.subject == "LTA"
        assert error.stream == "weather"
        assert "Section 3.4" in str(error)

    def test_nr_pr_carry_conflicts(self):
        reports = ["report-a", "report-b"]
        assert errors.EmptyResultWarning("nr", reports).conflicts == reports
        assert errors.PartialResultWarning("pr").conflicts == []

    def test_unknown_attribute_mentions_schema(self):
        error = errors.UnknownAttributeError("zz", "weather")
        assert "zz" in str(error) and "weather" in str(error)

    def test_streamsql_error_position(self):
        error = errors.StreamSQLError("bad token", line=3, column=7)
        assert "line 3" in str(error)


class TestPublicApi:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart_runs(self):
        import doctest

        results = doctest.testmod(repro, verbose=False)
        assert results.failed == 0
        assert results.attempted > 0
