"""Tests for workload generation, Zipf sequences, runner and report."""

import pytest

from repro.framework.metrics import MetricsCollector
from repro.workload.generator import (
    SHAPE_NAMES,
    TABLE3,
    WorkloadGenerator,
)
from repro.workload.report import (
    breakdown_summary,
    breakdown_table,
    improvement_histogram,
    policy_load_summary,
    summary_table,
)
from repro.workload.runner import ExperimentRunner
from repro.workload.zipf import zipf_ranks, zipf_sequence


def small_generator(seed=7, n_requests=120, n_policies=80):
    generator = WorkloadGenerator(seed=seed)
    generator.parameters = generator.parameters._replace(
        n_requests=n_requests, n_policies=n_policies
    )
    return generator


class TestZipf:
    def test_ranks_in_range(self):
        ranks = zipf_ranks(1000, max_rank=50, seed=1)
        assert min(ranks) >= 1 and max(ranks) <= 50

    def test_deterministic(self):
        assert zipf_ranks(100, seed=3) == zipf_ranks(100, seed=3)

    def test_skew_prefers_low_ranks(self):
        ranks = zipf_ranks(20000, alpha=1.2, max_rank=100, seed=1)
        low = sum(1 for r in ranks if r <= 10)
        high = sum(1 for r in ranks if r > 90)
        assert low > high * 2

    def test_weak_alpha_near_uniform(self):
        """α = 0.223 (Table 3) is only mildly skewed."""
        ranks = zipf_ranks(30000, alpha=TABLE3.zipf_alpha, max_rank=300, seed=1)
        top = sum(1 for r in ranks if r <= 30) / len(ranks)
        assert 0.1 < top < 0.3

    def test_sequence_maps_population(self):
        population = ["a", "b", "c", "d"]
        sequence = zipf_sequence(population, 50, max_rank=4, seed=1)
        assert set(sequence) <= set(population)

    def test_population_too_small(self):
        with pytest.raises(ValueError):
            zipf_sequence(["a"], 10, max_rank=5)

    def test_bad_max_rank(self):
        with pytest.raises(ValueError):
            zipf_ranks(10, max_rank=0)


class TestGenerator:
    def test_table3_defaults(self):
        assert TABLE3.n_direct_queries == 1500
        assert TABLE3.direct_query_composition == (160, 170, 130, 124, 254, 290, 372)
        assert TABLE3.n_policies == 1000
        assert TABLE3.zipf_alpha == 0.223
        assert TABLE3.zipf_max_rank == 300

    def test_item_counts(self):
        items = small_generator().generate()
        assert len(items) == 120
        unique_policies = {item.policy.policy_id for item in items}
        assert len(unique_policies) == 80

    def test_shapes_drawn_from_composition(self):
        items = small_generator(n_requests=400, n_policies=400).generate()
        seen = {item.shape for item in items}
        assert seen <= set(SHAPE_NAMES)
        assert len(seen) == len(SHAPE_NAMES)  # all shapes appear at 400 items

    def test_graphs_validate(self):
        generator = small_generator()
        for item in generator.generate():
            schema = generator.streams[item.stream]
            item.graph.validate(schema)

    def test_direct_sql_parses(self):
        from repro.streams.streamsql.parser import parse_streamsql

        for item in small_generator(n_requests=60, n_policies=60).generate():
            parsed = parse_streamsql(item.direct_sql)
            assert [op.kind for op in parsed.graph.operators] == [
                op.kind for op in item.graph.operators
            ]

    def test_requests_match_policies(self):
        from repro.xacml.response import Decision

        for item in small_generator(n_requests=60, n_policies=40).generate():
            assert item.policy.evaluate(item.request) is Decision.PERMIT

    def test_deterministic(self):
        first = small_generator(seed=5).generate()
        second = small_generator(seed=5).generate()
        assert [i.direct_sql for i in first] == [i.direct_sql for i in second]

    def test_reused_policies_for_extra_requests(self):
        items = small_generator(n_requests=120, n_policies=80).generate()
        assert items[80].policy.policy_id == items[0].policy.policy_id


class TestRunner:
    @pytest.fixture(scope="class")
    def run(self):
        generator = small_generator()
        runner = ExperimentRunner(seed=7, generator=generator)
        items = generator.generate()
        loads = runner.load_policies(items)
        direct = runner.run_direct(items)
        unique = runner.run_unique(items)
        return runner, items, loads, direct, unique

    def test_all_requests_fulfilled(self, run):
        runner, items, _, direct, unique = run
        assert len(direct) == len(items)
        assert len(unique) == len(items)
        assert all(t.outcome == "ok" for t in direct)
        assert all(t.outcome == "ok" for t in unique)

    def test_policy_load_calibration(self, run):
        _, _, loads, _, _ = run
        mean, stdev = policy_load_summary(loads)
        assert mean == pytest.approx(0.25, abs=0.03)
        assert stdev == pytest.approx(0.06, abs=0.03)

    def test_direct_faster_on_average(self, run):
        runner, *_ = run
        assert runner.metrics.summary("direct").mean < runner.metrics.summary("exacml+").mean

    def test_pdp_and_graph_small(self, run):
        _, _, _, _, unique = run
        stats = breakdown_summary(unique)
        assert stats["pdp"].mean < 0.01
        assert stats["query_graph"].mean < 0.01

    def test_network_about_two_thirds(self, run):
        _, _, _, _, unique = run
        stats = breakdown_summary(unique)
        assert 0.4 < stats["network_share"] < 0.8

    def test_zipf_cache_improves(self):
        generator_off = small_generator()
        runner_off = ExperimentRunner(seed=7, generator=generator_off, cache_enabled=False)
        items_off = generator_off.generate()
        runner_off.load_policies(items_off)
        off = runner_off.run_zipf(items_off, max_rank=60, system_label="exacml+")

        generator_on = small_generator()
        runner_on = ExperimentRunner(seed=7, generator=generator_on, cache_enabled=True)
        items_on = generator_on.generate()
        runner_on.load_policies(items_on)
        on = runner_on.run_zipf(items_on, max_rank=60)

        assert runner_on.proxy.hit_rate > 0.2
        histogram = improvement_histogram(on, off)
        assert histogram["fraction_over_100pct"] > 0.2
        assert histogram["mean_improvement"] > 0.3

    def test_outcome_counts(self, run):
        runner, items, *_ = run
        counts = runner.outcome_counts()
        assert counts["ok"] == 2 * len(items)


class TestReport:
    def test_tables_render(self, ):
        generator = small_generator(n_requests=40, n_policies=40)
        runner = ExperimentRunner(seed=7, generator=generator)
        items = generator.generate()
        runner.load_policies(items)
        traces = runner.run_unique(items)
        runner.run_direct(items)
        table = summary_table(runner.metrics, ["direct", "exacml+"])
        assert "direct" in table and "exacml+" in table
        breakdown = breakdown_table(traces, sample_every=10)
        assert "pdp" in breakdown
        summary = breakdown_summary(traces)
        assert summary["count"] == 40
        assert summary["pdp_graph_under_10ms"] > 0.9

    def test_breakdown_summary_empty(self):
        assert breakdown_summary([]) == {"count": 0}

    def test_improvement_histogram_empty(self):
        assert improvement_histogram([], [])["count"] == 0.0
