"""Tests for the StreamSQL dialect: lexer, parser, generator, round trip."""

import pytest

from repro.errors import StreamSQLError
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA, DataType
from repro.streams.streamsql.generator import generate_streamsql
from repro.streams.streamsql.lexer import SqlTokenType, tokenize_sql
from repro.streams.streamsql.parser import parse_script, parse_streamsql
from tests.conftest import build_nea_policy_graph

#: The paper's Figure 4(b) script (typos normalised).
FIGURE_4B = """
CREATE INPUT STREAM weather (
  samplingtime timestamp, temperature double,
  humidity double, rainrate double,
  windspeed double, winddirection int,
  barometer double);
CREATE STREAM internal_0;
SELECT * FROM weather WHERE rainrate > 50 INTO internal_0;
CREATE OUTPUT STREAM internal_1;
SELECT internal_0.samplingtime, internal_0.rainrate,
FROM internal_0 INTO internal_1;
CREATE OUTPUT STREAM output;
CREATE WINDOW _10tuple (SIZE 10 ADVANCE 2 TUPLES);
SELECT lastval(samplingtime) AS lastvalsamplingtime,
  avg(rainrate) AS avgrainrate
FROM internal_1[_10tuple] INTO output;
"""


class TestLexer:
    def test_statement_tokens(self):
        tokens = tokenize_sql("SELECT * FROM w INTO o;")
        kinds = [t.type for t in tokens[:-1]]
        assert kinds == [
            SqlTokenType.IDENT, SqlTokenType.STAR, SqlTokenType.IDENT,
            SqlTokenType.IDENT, SqlTokenType.IDENT, SqlTokenType.IDENT,
            SqlTokenType.SEMI,
        ]

    def test_comments_skipped(self):
        tokens = tokenize_sql("SELECT -- comment\n *")
        assert len(tokens) == 3  # SELECT, *, END

    def test_line_column_tracking(self):
        tokens = tokenize_sql("a\nbb ccc")
        assert tokens[1].line == 2
        assert tokens[2].column == 4

    def test_bad_character(self):
        with pytest.raises(StreamSQLError):
            tokenize_sql("SELECT $")


class TestParsePaperScript:
    def test_figure_4b_parses(self):
        parsed = parse_streamsql(FIGURE_4B)
        kinds = [op.kind for op in parsed.graph.operators]
        assert kinds == ["filter", "map", "aggregate"]
        assert parsed.graph.source == "weather"
        assert parsed.output_name == "output"

    def test_figure_4b_details(self):
        parsed = parse_streamsql(FIGURE_4B)
        graph = parsed.graph
        assert graph.filter_operator.condition.to_condition_string() == "rainrate > 50"
        assert graph.map_operator.attributes == ("samplingtime", "rainrate")
        aggregate = graph.aggregate_operator
        assert aggregate.window == WindowSpec(WindowType.TUPLE, 10, 2)
        assert [s.to_obligation_value() for s in aggregate.aggregations] == [
            "samplingtime:lastval", "rainrate:avg",
        ]

    def test_input_schema_extracted(self):
        parsed = parse_streamsql(FIGURE_4B)
        assert parsed.input_schema is not None
        assert parsed.input_schema.field("samplingtime").dtype is DataType.TIMESTAMP
        assert len(parsed.input_schema) == 7


class TestParserErrors:
    def test_no_select(self):
        with pytest.raises(StreamSQLError):
            parse_streamsql("CREATE STREAM a;")

    def test_two_chain_heads(self):
        script = (
            "SELECT * FROM a WHERE x > 1 INTO o1;\n"
            "SELECT * FROM b WHERE x > 1 INTO o2;\n"
        )
        with pytest.raises(StreamSQLError):
            parse_streamsql(script)

    def test_cycle_detected(self):
        script = (
            "SELECT * FROM a WHERE x > 1 INTO b;\n"
            "SELECT * FROM b WHERE x > 1 INTO a;\n"
        )
        with pytest.raises(StreamSQLError):
            parse_streamsql(script)

    def test_undefined_window(self):
        script = "SELECT avg(x) FROM s[w] INTO o;"
        with pytest.raises(StreamSQLError):
            parse_streamsql(script)

    def test_aggregate_without_window(self):
        script = "SELECT avg(x) FROM s INTO o;"
        with pytest.raises(StreamSQLError):
            parse_streamsql(script)

    def test_windowed_select_requires_functions(self):
        script = (
            "CREATE WINDOW w (SIZE 2 ADVANCE 2 TUPLES);\n"
            "SELECT x FROM s[w] INTO o;"
        )
        with pytest.raises(StreamSQLError):
            parse_streamsql(script)

    def test_missing_into(self):
        with pytest.raises(StreamSQLError):
            parse_streamsql("SELECT * FROM s WHERE x > 1;")

    def test_statement_level_parse(self):
        script = parse_script("CREATE STREAM a;\nCREATE OUTPUT STREAM b;")
        assert len(script.statements) == 2


class TestGenerator:
    def test_nea_graph_generates_paper_shape(self):
        graph = build_nea_policy_graph()
        sql = generate_streamsql(graph, WEATHER_SCHEMA)
        assert "CREATE INPUT STREAM weather" in sql
        assert "SELECT * FROM weather WHERE rainrate > 5 INTO internal_0;" in sql
        assert "CREATE WINDOW" in sql
        assert "SIZE 5 ADVANCE 2 TUPLES" in sql
        assert "lastval(samplingtime) AS lastvalsamplingtime" in sql
        assert sql.count("SELECT") == 3

    def test_passthrough_graph(self):
        sql = generate_streamsql(QueryGraph("weather"))
        assert "WHERE TRUE" in sql

    def test_filter_only(self):
        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        sql = generate_streamsql(graph)
        assert "CREATE OUTPUT STREAM output;" in sql
        assert "internal_0" not in sql


class TestRoundTrip:
    @pytest.mark.parametrize(
        "make_graph",
        [
            lambda: QueryGraph("weather").append(FilterOperator("rainrate > 5")),
            lambda: QueryGraph("weather").append(MapOperator(["rainrate", "windspeed"])),
            lambda: QueryGraph("weather").append(
                AggregateOperator(
                    WindowSpec(WindowType.TUPLE, 7, 3),
                    [AggregationSpec.parse("rainrate:avg")],
                )
            ),
            build_nea_policy_graph,
        ],
        ids=["filter", "map", "aggregate", "full-chain"],
    )
    def test_generate_then_parse(self, make_graph):
        graph = make_graph()
        sql = generate_streamsql(graph, WEATHER_SCHEMA)
        parsed = parse_streamsql(sql)
        assert [op.kind for op in parsed.graph.operators] == [
            op.kind for op in graph.operators
        ]
        original_filter = graph.filter_operator
        if original_filter is not None:
            assert (
                parsed.graph.filter_operator.condition.to_condition_string()
                == original_filter.condition.to_condition_string()
            )
        original_map = graph.map_operator
        if original_map is not None:
            assert parsed.graph.map_operator.attribute_set() == original_map.attribute_set()
        original_aggregate = graph.aggregate_operator
        if original_aggregate is not None:
            reparsed = parsed.graph.aggregate_operator
            assert reparsed.window == original_aggregate.window
            assert {s.key for s in reparsed.aggregations} == {
                s.key for s in original_aggregate.aggregations
            }

    def test_time_window_round_trip(self):
        graph = QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TIME, 60, 30),
                [AggregationSpec.parse("temperature:avg")],
            )
        )
        sql = generate_streamsql(graph, WEATHER_SCHEMA)
        assert "SECONDS" in sql
        parsed = parse_streamsql(sql)
        assert parsed.graph.aggregate_operator.window.window_type is WindowType.TIME
