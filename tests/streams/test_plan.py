"""Unit tests for the shared execution plan (repro.streams.plan).

The differential harnesses (`tests/properties/test_prop_multiquery_
equivalence.py`, the StreamSQL fuzzer) prove shared ≡ per-query on
whole workloads; these tests pin the plan's *mechanics*: fingerprint
canonicalization, prefix merging, subsumption feeds, clone-on-
divergence for touched stateful nodes, and refcounted node release.
"""

import pytest

from repro.expr.parser import parse_condition
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.plan import (
    CANON_LEAF_LIMIT,
    condition_fingerprint,
    operator_fingerprint,
)
from repro.streams.schema import Schema

SCHEMA = Schema("s", [("t", "timestamp"), ("x", "double"), ("y", "double")])


def fingerprint(text):
    return condition_fingerprint(parse_condition(text))


def tuple_agg(size, step, specs=("x:sum",)):
    return AggregateOperator(
        WindowSpec(WindowType.TUPLE, size, step),
        [AggregationSpec.parse(spec) for spec in specs],
    )


class TestConditionFingerprint:
    def test_commuted_conjunction_same_key(self):
        assert fingerprint("x > 10 AND y < 5") == fingerprint("y < 5 AND x > 10")

    def test_commuted_disjunction_same_key(self):
        assert fingerprint("x > 10 OR y < 5") == fingerprint("y < 5 OR x > 10")

    def test_redundant_literal_dropped(self):
        # x > 20 implies x > 10, so the weaker literal is simplified away.
        assert fingerprint("x > 20 AND x > 10") == fingerprint("x > 20")

    def test_unsatisfiable_conjunction_dropped(self):
        assert fingerprint("(x > 10 AND x < 0) OR y < 5") == fingerprint("y < 5")

    def test_true_and_contradiction_keys(self):
        assert fingerprint("TRUE") == ("true",)
        assert fingerprint("x > 10 OR TRUE") == ("true",)
        assert fingerprint("x > 1 AND x < 0")[0] == "false"

    def test_different_conditions_differ(self):
        assert fingerprint("x > 10") != fingerprint("x >= 10")
        assert fingerprint("x > 10") != fingerprint("y > 10")

    def test_leaf_limit_falls_back_to_raw(self):
        # DNF of (a OR b) * n explodes exponentially; past the leaf
        # budget the key degrades to the literal condition string
        # (still sound: equal strings are equal conditions).
        clause = " AND ".join(
            f"(x > {i} OR y < {i})" for i in range(CANON_LEAF_LIMIT)
        )
        key = fingerprint(clause)
        assert key[0] == "raw"


class TestOperatorFingerprint:
    def test_filter_key_is_condition_canonical(self):
        a = operator_fingerprint(FilterOperator("x > 10 AND y < 5"))
        b = operator_fingerprint(FilterOperator("y < 5 AND x > 10"))
        assert a == b

    def test_map_key_order_insensitive(self):
        # Schema.project orders output by the input schema, so the
        # attribute list's order is cosmetic.
        assert operator_fingerprint(MapOperator(["t", "x"])) == operator_fingerprint(
            MapOperator(["x", "t"])
        )
        assert operator_fingerprint(MapOperator(["t"])) != operator_fingerprint(
            MapOperator(["x", "t"])
        )

    def test_aggregate_key_preserves_spec_order(self):
        # Aggregation order fixes the output schema's field order.
        a = operator_fingerprint(tuple_agg(3, 3, ("x:sum", "x:count")))
        b = operator_fingerprint(tuple_agg(3, 3, ("x:count", "x:sum")))
        assert a != b
        assert operator_fingerprint(tuple_agg(3, 3)) == operator_fingerprint(
            tuple_agg(3, 3)
        )
        assert operator_fingerprint(tuple_agg(3, 3)) != operator_fingerprint(
            tuple_agg(3, 2)
        )

    def test_execution_path_is_part_of_the_key(self):
        compiled = FilterOperator("x > 0", use_compiled=True)
        interpreted = FilterOperator("x > 0", use_compiled=False)
        assert operator_fingerprint(compiled) != operator_fingerprint(interpreted)

    def test_unknown_operator_never_shares(self):
        class AuditedFilter(FilterOperator):
            pass

        assert operator_fingerprint(AuditedFilter("x > 0")) is None


class TestPlanSharing:
    def engine(self):
        engine = StreamEngine()
        engine.register_input_stream("s", SCHEMA)
        return engine

    def rows(self, values):
        return [
            {"t": float(i), "x": float(v), "y": float(-v)}
            for i, v in enumerate(values)
        ]

    def stats(self, engine):
        (stats,) = engine.plan_stats().values()
        return stats

    def test_identical_prefixes_merge(self):
        engine = self.engine()
        for _ in range(3):
            engine.register_query(
                QueryGraph("s", [FilterOperator("x > 10"), MapOperator(["t", "x"])])
            )
        stats = self.stats(engine)
        assert stats["nodes_created"] == 2  # one filter + one map, total
        assert stats["nodes_shared"] == 4

    def test_subsumed_filter_feeds_from_host(self):
        engine = self.engine()
        weak = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        strong = engine.register_query(
            QueryGraph("s", [FilterOperator("x > 20 AND y < 5")])
        )
        assert self.stats(engine)["nodes_subsumed"] == 1
        engine.push_batch("s", self.rows([5, 15, 25, -25]))
        assert [t["x"] for t in engine.read(weak)] == [15.0, 25.0]
        # y = -x, so x=25 has y=-25 < 5: only that row passes.
        assert [t["x"] for t in engine.read(strong)] == [25.0]

    def test_host_withdrawal_keeps_subsumed_child_correct(self):
        engine = self.engine()
        weak = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        strong = engine.register_query(QueryGraph("s", [FilterOperator("x > 20")]))
        engine.withdraw(weak)
        engine.push_batch("s", self.rows([15, 25]))
        assert [t["x"] for t in engine.read(strong)] == [25.0]
        # The host node survives (it feeds the child) even though its
        # own query is gone...
        assert self.stats(engine)["live_nodes"] == 2
        # ...and is released once the child goes too.
        engine.withdraw(strong)
        assert self.stats(engine)["live_nodes"] == 0

    def test_stateless_nodes_share_after_consuming(self):
        engine = self.engine()
        first = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        engine.push_batch("s", self.rows([5, 15]))
        late = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        assert self.stats(engine)["nodes_created"] == 1
        engine.push_batch("s", self.rows([25]))
        assert [t["x"] for t in engine.read(first)] == [15.0, 25.0]
        # The late query shares the touched filter node but must not
        # see tuples pushed before it registered.
        assert [t["x"] for t in engine.read(late)] == [25.0]

    def test_touched_aggregate_clones_instead_of_sharing(self):
        engine = self.engine()
        first = engine.register_query(QueryGraph("s", [tuple_agg(3, 3)]))
        engine.push_batch("s", self.rows([1, 2]))  # partial window buffered
        late = engine.register_query(QueryGraph("s", [tuple_agg(3, 3)]))
        # Sharing the half-full window would leak the first query's
        # history into the late one: a fresh clone is required.
        assert self.stats(engine)["nodes_created"] == 2
        engine.push_batch("s", self.rows([3, 4, 5]))
        assert [t["sumx"] for t in engine.read(first)] == [6.0]  # 1+2+3
        assert [t["sumx"] for t in engine.read(late)] == [12.0]  # 3+4+5

    def test_untouched_aggregate_shares(self):
        engine = self.engine()
        first = engine.register_query(QueryGraph("s", [tuple_agg(3, 3)]))
        second = engine.register_query(QueryGraph("s", [tuple_agg(3, 3)]))
        assert self.stats(engine)["nodes_created"] == 1
        assert self.stats(engine)["nodes_shared"] == 1
        engine.push_batch("s", self.rows([1, 2, 3]))
        assert [t["sumx"] for t in engine.read(first)] == [6.0]
        assert [t["sumx"] for t in engine.read(second)] == [6.0]

    def test_divergent_tails_fan_out_off_shared_prefix(self):
        engine = self.engine()
        mapped = engine.register_query(
            QueryGraph("s", [FilterOperator("x > 10"), MapOperator(["x"])])
        )
        aggregated = engine.register_query(
            QueryGraph("s", [FilterOperator("x > 10"), tuple_agg(2, 2)])
        )
        stats = self.stats(engine)
        assert stats["nodes_created"] == 3  # filter + map + aggregate
        assert stats["nodes_shared"] == 1  # the second query's filter
        engine.push_batch("s", self.rows([5, 20, 30]))
        assert [t.values for t in engine.read(mapped)] == [(20.0,), (30.0,)]
        assert [t["sumx"] for t in engine.read(aggregated)] == [50.0]

    def test_mid_batch_registration_defers_the_inflight_batch(self):
        """A query registered from a per-tuple listener mid-batch sees
        nothing of the in-flight batch — exactly like the per-query
        path, where the new batch listener is outside the dispatch
        snapshot."""
        results = {}
        for shared in (True, False):
            engine = StreamEngine(shared=shared)
            engine.register_input_stream("s", SCHEMA)
            source = engine.catalog.get("s")
            box = {}

            def register_on_marker(tup, engine=engine, box=box):
                if tup["x"] == 99.0 and "handle" not in box:
                    box["handle"] = engine.register_query(
                        QueryGraph("s", [FilterOperator("x > 0")])
                    )

            source.add_listener(register_on_marker)
            engine.push_batch("s", self.rows([1, 99, 3]))
            engine.push_batch("s", self.rows([4, 5]))
            results[shared] = [t["x"] for t in engine.read(box["handle"])]
        assert results[True] == results[False] == [4.0, 5.0]

    def test_per_query_engine_builds_no_plans(self):
        engine = StreamEngine(shared=False)
        engine.register_input_stream("s", SCHEMA)
        engine.register_query(QueryGraph("s", [FilterOperator("x > 0")]))
        assert engine.plan_stats() == {}

    def test_reference_engine_is_unshared(self):
        assert StreamEngine.reference().shared is False
        # But an interpreted *shared* engine is constructible (the
        # fingerprints carry use_compiled, so it must behave too).
        engine = StreamEngine(compiled=False, shared=True)
        engine.register_input_stream("s", SCHEMA)
        h1 = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        h2 = engine.register_query(QueryGraph("s", [FilterOperator("x > 10")]))
        engine.push_batch("s", self.rows([5, 15]))
        assert self.stats(engine)["nodes_shared"] == 1
        assert [t["x"] for t in engine.read(h1)] == [15.0]
        assert [t["x"] for t in engine.read(h2)] == [15.0]
