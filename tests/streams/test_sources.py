"""Tests for the synthetic data sources."""

from repro.streams.schema import GPS_SCHEMA, WEATHER_SCHEMA
from repro.streams.sources import GpsSource, WeatherSource, integer_sequence_tuples
from repro.streams.tuples import make_tuple


class TestWeatherSource:
    def test_records_match_schema(self):
        for record in WeatherSource(seed=1).records(50):
            make_tuple(WEATHER_SCHEMA, record)  # must not raise

    def test_deterministic_with_seed(self):
        assert WeatherSource(seed=5).records(20) == WeatherSource(seed=5).records(20)

    def test_different_seeds_differ(self):
        assert WeatherSource(seed=5).records(20) != WeatherSource(seed=6).records(20)

    def test_sampling_interval(self):
        records = WeatherSource(seed=1, interval_seconds=30.0).records(5)
        gaps = [
            records[i + 1]["samplingtime"] - records[i]["samplingtime"]
            for i in range(4)
        ]
        assert gaps == [30.0] * 4

    def test_rain_occurs_but_not_always(self):
        records = WeatherSource(seed=3).records(1000)
        rainy = sum(1 for r in records if r["rainrate"] > 5)
        assert 0 < rainy < 1000

    def test_value_sanity(self):
        for record in WeatherSource(seed=2).records(200):
            assert record["rainrate"] >= 0
            assert 0 <= record["winddirection"] < 360
            assert 0 <= record["humidity"] <= 100

    def test_tuples_helper(self):
        tuples = WeatherSource(seed=1).tuples(3)
        assert len(tuples) == 3
        assert tuples[0].schema == WEATHER_SCHEMA


class TestGpsSource:
    def test_records_match_schema(self):
        for record in GpsSource(seed=1).records(40):
            make_tuple(GPS_SCHEMA, record)

    def test_devices_cycle(self):
        records = GpsSource(seed=1, device_count=3).records(6)
        ids = [r["deviceid"] for r in records]
        assert ids[:3] == ids[3:]

    def test_deterministic(self):
        assert GpsSource(seed=9).records(10) == GpsSource(seed=9).records(10)

    def test_positions_move(self):
        records = GpsSource(seed=1, device_count=1).records(10)
        positions = {(r["latitude"], r["longitude"]) for r in records}
        assert len(positions) > 1


class TestIntegerSequence:
    def test_values_are_indices(self):
        tuples = integer_sequence_tuples(5)
        assert [t["a"] for t in tuples] == [0, 1, 2, 3, 4]
