"""Tests for filter, map and window-aggregation boxes."""

import pytest

from repro.errors import SchemaError, StreamError
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import Schema
from repro.streams.tuples import make_tuple

SCHEMA = Schema("s", [("t", "timestamp"), ("x", "double"), ("tag", "string")])


def tuples(*values):
    return [
        make_tuple(SCHEMA, {"t": float(i), "x": float(v), "tag": "a"})
        for i, v in enumerate(values)
    ]


def run(operator, schema, tuples_in):
    out_schema = operator.output_schema(schema)
    outputs = []
    for tup in tuples_in:
        outputs.extend(operator.process(tup, out_schema))
    return out_schema, outputs


class TestFilterOperator:
    def test_passes_matching(self):
        _, outputs = run(FilterOperator("x > 2"), SCHEMA, tuples(1, 3, 2, 5))
        assert [t["x"] for t in outputs] == [3, 5]

    def test_schema_unchanged(self):
        schema, _ = run(FilterOperator("x > 2"), SCHEMA, [])
        assert schema == SCHEMA

    def test_unknown_attribute_rejected(self):
        with pytest.raises(SchemaError):
            FilterOperator("zz > 2").output_schema(SCHEMA)

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            FilterOperator("tag > 2").output_schema(SCHEMA)
        with pytest.raises(SchemaError):
            FilterOperator("x = 'abc'").output_schema(SCHEMA)

    def test_string_filter(self):
        operator = FilterOperator("tag = 'a'")
        _, outputs = run(operator, SCHEMA, tuples(1, 2))
        assert len(outputs) == 2

    def test_fresh_copy_shares_condition(self):
        operator = FilterOperator("x > 2")
        clone = operator.fresh_copy()
        assert clone is not operator
        assert clone.condition == operator.condition


class TestMapOperator:
    def test_projection(self):
        schema, outputs = run(MapOperator(["x"]), SCHEMA, tuples(1, 2))
        assert schema.attribute_names == ("x",)
        assert [t["x"] for t in outputs] == [1, 2]

    def test_order_follows_schema(self):
        schema, _ = run(MapOperator(["x", "t"]), SCHEMA, [])
        assert schema.attribute_names == ("t", "x")

    def test_case_insensitive_dedupe(self):
        operator = MapOperator(["X", "x", "t"])
        assert operator.attributes == ("X", "t")

    def test_empty_rejected(self):
        with pytest.raises(SchemaError):
            MapOperator([])

    def test_unknown_attribute(self):
        with pytest.raises(SchemaError):
            MapOperator(["zz"]).output_schema(SCHEMA)


class TestAggregationSpec:
    def test_parse_colon_form(self):
        spec = AggregationSpec.parse("rainrate:avg")
        assert spec.attribute == "rainrate"
        assert spec.function.name == "avg"

    def test_parse_call_form(self):
        spec = AggregationSpec.parse("avg(RainRate)")
        assert spec.attribute == "rainrate"
        assert spec.function.name == "avg"

    def test_round_trip(self):
        spec = AggregationSpec.parse("max(windspeed)")
        assert spec.to_obligation_value() == "windspeed:max"
        assert spec.to_call_syntax() == "max(windspeed)"

    def test_malformed(self):
        with pytest.raises(StreamError):
            AggregationSpec.parse("justaname")
        with pytest.raises(StreamError):
            AggregationSpec.parse(":avg")


class TestWindowSpec:
    def test_validation(self):
        with pytest.raises(StreamError):
            WindowSpec(WindowType.TUPLE, 0, 1)
        with pytest.raises(StreamError):
            WindowSpec(WindowType.TUPLE, 5, 0)

    def test_refines(self):
        policy = WindowSpec(WindowType.TUPLE, 5, 2)
        assert WindowSpec(WindowType.TUPLE, 5, 2).refines(policy)
        assert WindowSpec(WindowType.TUPLE, 10, 2).refines(policy)
        assert not WindowSpec(WindowType.TUPLE, 4, 2).refines(policy)
        assert not WindowSpec(WindowType.TUPLE, 5, 1).refines(policy)
        assert not WindowSpec(WindowType.TIME, 5, 2).refines(policy)

    def test_window_type_parse(self):
        assert WindowType.parse("TUPLES") is WindowType.TUPLE
        assert WindowType.parse("seconds") is WindowType.TIME
        with pytest.raises(StreamError):
            WindowType.parse("rows")


class TestTupleWindows:
    def test_size3_step2(self):
        """Example 2's geometry: sums over (a0..a2), (a2..a4), ..."""
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 3, 2), [AggregationSpec.parse("x:sum")]
        )
        _, outputs = run(operator, SCHEMA, tuples(0, 1, 2, 3, 4, 5, 6))
        assert [t["sumx"] for t in outputs] == [0 + 1 + 2, 2 + 3 + 4, 4 + 5 + 6]

    def test_size5_step2_counts(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 5, 2), [AggregationSpec.parse("x:avg")]
        )
        _, outputs = run(operator, SCHEMA, tuples(*range(11)))
        # Windows end at tuples 5, 7, 9, 11 → positions 4, 6, 8, 10.
        assert len(outputs) == 4
        assert outputs[0]["avgx"] == 2.0

    def test_step_larger_than_size(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 2, 3), [AggregationSpec.parse("x:sum")]
        )
        _, outputs = run(operator, SCHEMA, tuples(*range(8)))
        assert [t["sumx"] for t in outputs] == [0 + 1, 3 + 4, 6 + 7]

    def test_multiple_aggregations(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 3, 3),
            [AggregationSpec.parse("x:min"), AggregationSpec.parse("x:max"),
             AggregationSpec.parse("t:lastval")],
        )
        schema, outputs = run(operator, SCHEMA, tuples(5, 1, 3))
        assert schema.attribute_names == ("minx", "maxx", "lastvalt")
        assert outputs[0].values == (1.0, 5.0, 2.0)

    def test_duplicate_specs_deduplicated(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 2, 2),
            [AggregationSpec.parse("x:avg"), AggregationSpec.parse("avg(x)")],
        )
        assert len(operator.aggregations) == 1

    def test_no_aggregations_rejected(self):
        with pytest.raises(StreamError):
            AggregateOperator(WindowSpec(WindowType.TUPLE, 2, 2), [])

    def test_fresh_copy_resets_state(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 2, 2), [AggregationSpec.parse("x:sum")]
        )
        _, outputs = run(operator, SCHEMA, tuples(1, 2))
        assert len(outputs) == 1
        clone = operator.fresh_copy()
        _, outputs = run(clone, SCHEMA, tuples(3))
        assert outputs == []  # fresh state: window not yet full


class TestColumnarWindows:
    """Columnar-path specifics: reference-mode flag, recompute fallback,
    state reset, gaps, and the time-window scan fallback."""

    def overlapping_operator(self, use_compiled=True):
        return AggregateOperator(
            WindowSpec(WindowType.TUPLE, 4, 1),
            [AggregationSpec.parse("x:avg"), AggregationSpec.parse("x:min"),
             AggregationSpec.parse("x:lastval")],
            use_compiled=use_compiled,
        )

    def test_reference_flag_matches_columnar(self):
        stream = tuples(5, 1, 4, 1, 5, 9, 2, 6)
        _, compiled_out = run(self.overlapping_operator(True), SCHEMA, stream)
        _, reference_out = run(self.overlapping_operator(False), SCHEMA, stream)
        assert [t.values for t in compiled_out] == [t.values for t in reference_out]

    def test_median_falls_back_to_recompute(self):
        """median has no incremental state; it must still be correct on
        an overlapping window via the column-slice fallback."""
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 3, 1),
            [AggregationSpec.parse("x:median"), AggregationSpec.parse("x:count")],
        )
        _, outputs = run(operator, SCHEMA, tuples(5, 1, 4, 2, 8))
        assert [t["medianx"] for t in outputs] == [4.0, 2.0, 4.0]
        assert all(t["countx"] == 3 for t in outputs)

    def test_fresh_copy_resets_columnar_state(self):
        operator = self.overlapping_operator()
        _, outputs = run(operator, SCHEMA, tuples(1, 2, 3, 4, 5))
        assert len(outputs) == 2
        clone = operator.fresh_copy()
        assert clone.use_compiled
        _, outputs = run(clone, SCHEMA, tuples(1, 2, 3))
        assert outputs == []  # fresh state: window not yet full

    def test_gap_windows_with_incremental_state(self):
        """step > size leaves gaps; shares the sweep with step < size."""
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 2, 5), [AggregationSpec.parse("x:max")]
        )
        _, outputs = run(operator, SCHEMA, tuples(*range(14)))
        assert [t["maxx"] for t in outputs] == [1.0, 6.0, 11.0]

    def test_batch_vs_single_identical(self):
        operator = self.overlapping_operator()
        out_schema = operator.output_schema(SCHEMA)
        batch_out = operator.process_batch(tuples(3, 1, 4, 1, 5, 9, 2), out_schema)
        _, single_out = run(self.overlapping_operator(), SCHEMA, tuples(3, 1, 4, 1, 5, 9, 2))
        assert [t.values for t in batch_out] == [t.values for t in single_out]

    def test_out_of_order_time_window_matches_reference(self):
        """A late timestamp flips the columnar time path into scan mode
        mid-stream; output must still match the seed row path."""
        stamps = [(0.0, 1), (5.0, 2), (3.0, 7), (11.0, 4), (2.0, 9), (24.0, 5)]
        outputs = {}
        for mode, use_compiled in (("columnar", True), ("reference", False)):
            operator = AggregateOperator(
                WindowSpec(WindowType.TIME, 10, 5),
                [AggregationSpec.parse("x:sum"), AggregationSpec.parse("x:firstval")],
                use_compiled=use_compiled,
            )
            tuples_in = [
                make_tuple(SCHEMA, {"t": t, "x": float(x), "tag": "a"})
                for t, x in stamps
            ]
            _, outputs[mode] = run(operator, SCHEMA, tuples_in)
        assert [t.values for t in outputs["columnar"]] == [
            t.values for t in outputs["reference"]
        ]

    def test_outlier_eviction_recovers_exactly(self):
        """Once a 1e16 outlier evicts, the compensated running sum must
        report the exact small-value sums — a bare running total would
        have absorbed them and report 0.0 forever after.  (While the
        outlier is still in the window, compensation makes the
        incremental result a few ulps *more* accurate than recompute,
        so only the post-outlier windows are compared exactly.)"""
        values = [1e16, 1.0, 1.0, 1.0, 1.0, 2.0, 3.0]
        expected_post_outlier = [(3.0, 1.0), (4.0, 4.0 / 3.0), (6.0, 2.0)]
        for feed in ("per_tuple", "whole_batch"):
            outputs = {}
            for mode, use_compiled in (("columnar", True), ("reference", False)):
                operator = AggregateOperator(
                    WindowSpec(WindowType.TUPLE, 3, 1),
                    [AggregationSpec.parse("x:sum"), AggregationSpec.parse("x:avg")],
                    use_compiled=use_compiled,
                )
                if feed == "per_tuple":
                    _, outputs[mode] = run(operator, SCHEMA, tuples(*values))
                else:
                    out_schema = operator.output_schema(SCHEMA)
                    outputs[mode] = operator.process_batch(
                        tuples(*values), out_schema
                    )
            # Windows after the outlier left: [1,1,1], [1,1,2], [1,2,3].
            post_outlier = [t.values for t in outputs["columnar"]][2:]
            assert post_outlier == expected_post_outlier, feed
            assert post_outlier == [t.values for t in outputs["reference"]][2:]

    def test_long_stream_buffer_stays_bounded(self):
        """The columnar ring buffer must trim its dead prefix."""
        operator = AggregateOperator(
            WindowSpec(WindowType.TUPLE, 8, 2), [AggregationSpec.parse("x:sum")]
        )
        out_schema = operator.output_schema(SCHEMA)
        for chunk_start in range(0, 400, 16):
            operator.process_batch(
                tuples(*range(chunk_start, chunk_start + 16)), out_schema
            )
        buffered = len(operator._columnar.cols[0])
        assert buffered <= 8 + 16  # window tail + at most one batch


class TestTimeWindows:
    def test_time_window_basic(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TIME, 10, 10), [AggregationSpec.parse("x:sum")]
        )
        tuples_in = [
            make_tuple(SCHEMA, {"t": t, "x": x, "tag": "a"})
            for t, x in [(0.0, 1), (5.0, 2), (9.9, 3), (10.0, 4), (19.0, 5), (25.0, 6)]
        ]
        _, outputs = run(operator, SCHEMA, tuples_in)
        # Window [0,10) → 1+2+3; window [10,20) closes when t=25 arrives.
        assert [t["sumx"] for t in outputs] == [6.0, 9.0]

    def test_sliding_time_window(self):
        operator = AggregateOperator(
            WindowSpec(WindowType.TIME, 10, 5), [AggregationSpec.parse("x:count")]
        )
        tuples_in = [
            make_tuple(SCHEMA, {"t": float(t), "x": 1.0, "tag": "a"})
            for t in range(0, 30, 2)
        ]
        _, outputs = run(operator, SCHEMA, tuples_in)
        assert all(t["countx"] == 5 for t in outputs)

    def test_requires_time_attribute(self):
        schema = Schema("s2", [("x", "double")])
        operator = AggregateOperator(
            WindowSpec(WindowType.TIME, 10, 5), [AggregationSpec.parse("x:sum")]
        )
        with pytest.raises(SchemaError):
            operator.output_schema(schema)

    def test_explicit_time_attribute(self):
        schema = Schema("s2", [("tick", "int"), ("x", "double")])
        operator = AggregateOperator(
            WindowSpec(WindowType.TIME, 4, 4),
            [AggregationSpec.parse("x:sum")],
            time_attribute="tick",
        )
        out_schema = operator.output_schema(schema)
        outputs = []
        for tick in range(9):
            outputs.extend(
                operator.process(
                    make_tuple(schema, {"tick": tick, "x": 1.0}), out_schema
                )
            )
        assert [t["sumx"] for t in outputs] == [4.0, 4.0]
