"""Tests for the aggregate-function registry."""

import math

import pytest

from repro.errors import StreamError
from repro.streams.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateFunction,
    get_aggregate_function,
    register_aggregate_function,
)
from repro.streams.schema import DataType, Field


class TestLookup:
    def test_known_functions_present(self):
        for name in ("avg", "sum", "min", "max", "count", "lastval",
                     "firstval", "median", "stdev"):
            assert get_aggregate_function(name).name == name

    def test_paper_spelling_aliases(self):
        assert get_aggregate_function("LastValue").name == "lastval"
        assert get_aggregate_function("FirstValue").name == "firstval"
        assert get_aggregate_function("Average").name == "avg"

    def test_unknown_raises(self):
        with pytest.raises(StreamError):
            get_aggregate_function("mode")


class TestComputation:
    values = [4, 1, 3, 2]

    def test_avg(self):
        assert get_aggregate_function("avg").compute(self.values) == 2.5

    def test_sum(self):
        assert get_aggregate_function("sum").compute(self.values) == 10

    def test_min_max(self):
        assert get_aggregate_function("min").compute(self.values) == 1
        assert get_aggregate_function("max").compute(self.values) == 4

    def test_count(self):
        assert get_aggregate_function("count").compute(self.values) == 4

    def test_first_last(self):
        assert get_aggregate_function("firstval").compute(self.values) == 4
        assert get_aggregate_function("lastval").compute(self.values) == 2

    def test_median_even_odd(self):
        assert get_aggregate_function("median").compute([1, 2, 3, 4]) == 2.5
        assert get_aggregate_function("median").compute([3, 1, 2]) == 2

    def test_stdev(self):
        result = get_aggregate_function("stdev").compute([2, 4, 4, 4, 5, 5, 7, 9])
        assert math.isclose(result, 2.138, rel_tol=1e-3)

    def test_stdev_single_value(self):
        assert get_aggregate_function("stdev").compute([5]) == 0.0

    def test_empty_window_raises(self):
        with pytest.raises(StreamError):
            get_aggregate_function("avg").compute([])


class TestResultTypes:
    def test_avg_always_double(self):
        field = get_aggregate_function("avg").result_field(Field("x", "int"))
        assert field.dtype is DataType.DOUBLE
        assert field.name == "avgx"

    def test_count_always_int(self):
        field = get_aggregate_function("count").result_field(Field("x", "string"))
        assert field.dtype is DataType.INT

    def test_min_preserves(self):
        field = get_aggregate_function("min").result_field(Field("x", "timestamp"))
        assert field.dtype is DataType.TIMESTAMP

    def test_sum_of_int_is_int(self):
        assert get_aggregate_function("sum").result_field(Field("x", "int")).dtype is DataType.INT

    def test_sum_of_timestamp_widens(self):
        assert (
            get_aggregate_function("sum").result_field(Field("x", "timestamp")).dtype
            is DataType.DOUBLE
        )

    def test_numeric_required(self):
        with pytest.raises(StreamError):
            get_aggregate_function("avg").result_field(Field("x", "string"))

    def test_lastval_works_on_strings(self):
        field = get_aggregate_function("lastval").result_field(Field("x", "string"))
        assert field.dtype is DataType.STRING


class TestRegistration:
    def test_custom_function(self):
        register_aggregate_function(
            AggregateFunction("range", lambda v: max(v) - min(v), lambda d: d)
        )
        try:
            assert get_aggregate_function("range").compute([1, 5, 3]) == 4
        finally:
            AGGREGATE_FUNCTIONS.pop("range", None)
