"""Tests for the aggregate-function registry and incremental states."""

import math
import random

import pytest

from repro.errors import StreamError
from repro.streams.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    AggregateFunction,
    AggregateState,
    get_aggregate_function,
    register_aggregate_function,
)
from repro.streams.schema import DataType, Field


class TestLookup:
    def test_known_functions_present(self):
        for name in ("avg", "sum", "min", "max", "count", "lastval",
                     "firstval", "median", "stdev"):
            assert get_aggregate_function(name).name == name

    def test_paper_spelling_aliases(self):
        assert get_aggregate_function("LastValue").name == "lastval"
        assert get_aggregate_function("FirstValue").name == "firstval"
        assert get_aggregate_function("Average").name == "avg"

    def test_unknown_raises(self):
        with pytest.raises(StreamError):
            get_aggregate_function("mode")


class TestComputation:
    values = [4, 1, 3, 2]

    def test_avg(self):
        assert get_aggregate_function("avg").compute(self.values) == 2.5

    def test_sum(self):
        assert get_aggregate_function("sum").compute(self.values) == 10

    def test_min_max(self):
        assert get_aggregate_function("min").compute(self.values) == 1
        assert get_aggregate_function("max").compute(self.values) == 4

    def test_count(self):
        assert get_aggregate_function("count").compute(self.values) == 4

    def test_first_last(self):
        assert get_aggregate_function("firstval").compute(self.values) == 4
        assert get_aggregate_function("lastval").compute(self.values) == 2

    def test_median_even_odd(self):
        assert get_aggregate_function("median").compute([1, 2, 3, 4]) == 2.5
        assert get_aggregate_function("median").compute([3, 1, 2]) == 2

    def test_stdev(self):
        result = get_aggregate_function("stdev").compute([2, 4, 4, 4, 5, 5, 7, 9])
        assert math.isclose(result, 2.138, rel_tol=1e-3)

    def test_stdev_single_value(self):
        assert get_aggregate_function("stdev").compute([5]) == 0.0

    def test_empty_window_raises(self):
        with pytest.raises(StreamError):
            get_aggregate_function("avg").compute([])


class TestResultTypes:
    def test_avg_always_double(self):
        field = get_aggregate_function("avg").result_field(Field("x", "int"))
        assert field.dtype is DataType.DOUBLE
        assert field.name == "avgx"

    def test_count_always_int(self):
        field = get_aggregate_function("count").result_field(Field("x", "string"))
        assert field.dtype is DataType.INT

    def test_min_preserves(self):
        field = get_aggregate_function("min").result_field(Field("x", "timestamp"))
        assert field.dtype is DataType.TIMESTAMP

    def test_sum_of_int_is_int(self):
        assert get_aggregate_function("sum").result_field(Field("x", "int")).dtype is DataType.INT

    def test_sum_of_timestamp_widens(self):
        assert (
            get_aggregate_function("sum").result_field(Field("x", "timestamp")).dtype
            is DataType.DOUBLE
        )

    def test_numeric_required(self):
        with pytest.raises(StreamError):
            get_aggregate_function("avg").result_field(Field("x", "string"))

    def test_lastval_works_on_strings(self):
        field = get_aggregate_function("lastval").result_field(Field("x", "string"))
        assert field.dtype is DataType.STRING


class TestRegistration:
    def test_custom_function(self):
        register_aggregate_function(
            AggregateFunction("range", lambda v: max(v) - min(v), lambda d: d)
        )
        try:
            assert get_aggregate_function("range").compute([1, 5, 3]) == 4
        finally:
            AGGREGATE_FUNCTIONS.pop("range", None)

    def test_custom_function_has_no_state(self):
        """Third-party registrations without a state factory fall back
        to recompute-per-window (make_state returns None)."""
        function = AggregateFunction("range", lambda v: max(v) - min(v), lambda d: d)
        assert function.make_state() is None


class TestIncrementalStates:
    """make_state() drives a sliding window exactly like the engine:
    FIFO insert/evict; result must track the recompute answer."""

    STATEFUL = ("avg", "sum", "min", "max", "count", "lastval", "firstval",
                "stdev", "median")

    def slide(self, name, values, size, exact=True):
        """Slide a size-`size` step-1 window over *values*, comparing
        the incremental result to compute() at every position."""
        function = get_aggregate_function(name)
        state = function.make_state()
        assert state is not None
        for index, value in enumerate(values):
            state.insert(value)
            if index >= size:
                state.evict(values[index - size])
            window = values[max(0, index - size + 1): index + 1]
            expected = function.compute(window)
            got = state.result()
            if exact:
                assert got == expected, (name, index, got, expected)
            else:
                assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-9)

    def test_all_stateful_functions_on_ints(self):
        rng = random.Random(7)
        values = [rng.randint(-100, 100) for _ in range(80)]
        for name in self.STATEFUL:
            exact = name not in ("avg", "stdev")
            self.slide(name, values, size=7, exact=exact)

    def test_all_stateful_functions_on_floats(self):
        rng = random.Random(11)
        values = [rng.uniform(-50, 50) for _ in range(80)]
        for name in self.STATEFUL:
            exact = name in ("min", "max", "count", "lastval", "firstval", "median")
            self.slide(name, values, size=5, exact=exact)

    def test_min_max_exact_under_duplicates(self):
        """The two-stacks extremum must survive duplicate values and
        repeated pour-overs."""
        values = [3, 1, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 1, 1, 1]
        self.slide("min", values, size=4)
        self.slide("max", values, size=4)

    def test_welford_eviction_down_to_empty(self):
        state = get_aggregate_function("stdev").make_state()
        for value in (2.0, 4.0, 4.0):
            state.insert(value)
        for value in (2.0, 4.0, 4.0):
            state.evict(value)
        state.insert(10.0)
        state.insert(14.0)
        assert math.isclose(state.result(), get_aggregate_function("stdev").compute([10.0, 14.0]))

    def test_insert_many_evict_many_match_per_value(self):
        """The batched state entry points must agree with value-at-a-time
        driving (the overrides reduce whole batches in C)."""
        rng = random.Random(5)
        values = [rng.randint(-30, 30) for _ in range(40)]
        for name in self.STATEFUL:
            function = get_aggregate_function(name)
            batched, stepped = function.make_state(), function.make_state()
            batched.insert_many(values)
            for value in values:
                stepped.insert(value)
            assert batched.result() == stepped.result() or math.isclose(
                batched.result(), stepped.result(), rel_tol=1e-9
            ), name
            batched.evict_many(values[:25])
            for value in values[:25]:
                stepped.evict(value)
            assert batched.result() == stepped.result() or math.isclose(
                batched.result(), stepped.result(), rel_tol=1e-9
            ), name

    def test_sum_avg_survive_large_outlier_eviction(self):
        """Neumaier compensation: small values absorbed by a huge
        intermediate total must reappear once the outlier evicts —
        a bare running total would report 0.0 forever after."""
        for name, expected in (("sum", 3.0), ("avg", 1.0)):
            state = get_aggregate_function(name).make_state()
            state.insert(1e16)
            for _ in range(3):
                state.insert(1.0)
            state.evict(1e16)
            assert state.result() == expected, name

    def test_sum_avg_batched_outlier_absorption_recovered(self):
        """The batched entry points must compensate *within* the batch
        too: a plain sum() pre-collapse of [1e16, 1.0, 1.0, 1.0] loses
        the small values before any compensation could see them."""
        for name, expected in (("sum", 3.0), ("avg", 1.0)):
            state = get_aggregate_function(name).make_state()
            state.insert_many([1e16, 1.0, 1.0, 1.0])
            state.evict_many([1e16])
            assert state.result() == expected, name

    def test_int_sum_stays_exact_int(self):
        state = get_aggregate_function("sum").make_state()
        for value in (10**18, 3, -(10**18)):
            state.insert(value)
        state.evict(10**18)
        assert state.result() == 3 - 10**18
        assert isinstance(state.result(), int)

    def test_protocol_base_raises(self):
        state = AggregateState()
        with pytest.raises(NotImplementedError):
            state.insert(1)
        with pytest.raises(NotImplementedError):
            state.evict(1)
        with pytest.raises(NotImplementedError):
            state.result()


class TestWelfordStdev:
    """The module-level _stdev is now Welford single-pass; it must agree
    with the two-pass textbook formula and stay stable for large means."""

    def two_pass(self, values):
        n = len(values)
        mean = sum(values) / n
        if n == 1:
            return 0.0
        return math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))

    def test_matches_two_pass(self):
        rng = random.Random(3)
        for _ in range(50):
            values = [rng.uniform(-100, 100) for _ in range(rng.randint(1, 30))]
            got = get_aggregate_function("stdev").compute(values)
            assert math.isclose(got, self.two_pass(values), rel_tol=1e-9, abs_tol=1e-9)

    def test_large_mean_stability(self):
        """Catastrophic-cancellation regime: huge mean, tiny variance.
        Welford keeps full precision where naive E[x²]−E[x]² collapses."""
        base = 1e9
        values = [base + offset for offset in (0.0, 1.0, 2.0, 3.0)]
        got = get_aggregate_function("stdev").compute(values)
        expected = self.two_pass([0.0, 1.0, 2.0, 3.0])
        assert math.isclose(got, expected, rel_tol=1e-6)


class TestWelfordConstantWindows:
    """PR 5 regression pins: the reverse-Welford state must answer an
    *exact* 0.0 once the held window is constant (the ~8e-7-vs-0.0
    drift the PR 4 fuzzer caught and tolerated), and must never hold a
    negative variance residue after an eviction."""

    def sliding(self, values, size):
        """Drive a state window-fashion; yield the result per window."""
        state = get_aggregate_function("stdev").make_state()
        for index, value in enumerate(values):
            state.insert(value)
            if index >= size:
                state.evict(values[index - size])
            if index >= size - 1:
                yield state.result()

    def test_window_going_constant_is_exactly_zero(self):
        # Varied prefix, then a constant tail: the fuzzer's shape.  Once
        # the varied values have been evicted, the suffix-run detector
        # must snap the variance to an exact zero — no drift allowance.
        prefix = [3.7, -12.1, 8.88, 0.003]
        values = prefix + [4.2] * 12
        results = list(self.sliding(values, size=4))
        assert results[-1] == 0.0
        # results[k] covers values[k:k+4]: fully constant from k=4 on.
        for result in results[len(prefix):]:
            assert result == 0.0

    def test_equal_timestamp_regression_shape(self):
        # The literal PR 4 finding: overlapping window of equal values
        # reached through insert/evict churn answered ~8e-7.
        values = [1519.9169921875] * 6 + [1519.9169921875] * 6
        assert all(r == 0.0 for r in self.sliding(values, size=4))

    def test_mixed_int_float_equal_values_are_constant(self):
        values = [2, 2.0, 2, 2.0, 2]
        assert list(self.sliding(values, size=3)) == [0.0, 0.0, 0.0]

    def test_variance_never_negative_after_evictions(self):
        rng = random.Random(11)
        state = get_aggregate_function("stdev").make_state()
        window = []
        for _ in range(2000):
            value = rng.choice((0.1, 1e8, -3.5, 1e8, 0.1))
            window.append(value)
            state.insert(value)
            if len(window) > 5:
                state.evict(window.pop(0))
            assert state.m2 >= 0.0
            assert state.result() >= 0.0

    def test_constant_then_varied_still_matches_recompute(self):
        # Leaving the constant regime must not corrupt the state: the
        # snapped (mean, 0.0) is the exact state for the held values.
        values = [7.5] * 6 + [1.25, -3.0, 9.75, 7.5, 7.5, 2.0]
        size = 4
        recompute = get_aggregate_function("stdev").compute
        for got, index in zip(
            self.sliding(values, size), range(size - 1, len(values))
        ):
            expected = recompute(values[index - size + 1:index + 1])
            assert math.isclose(got, expected, rel_tol=1e-9, abs_tol=1e-12)
