"""Tests for schemas, fields and data types."""

import pytest

from repro.errors import SchemaError, UnknownAttributeError
from repro.streams.schema import (
    GPS_SCHEMA,
    WEATHER_SCHEMA,
    DataType,
    Field,
    Schema,
)


class TestDataType:
    def test_parse_aliases(self):
        assert DataType.parse("DOUBLE") is DataType.DOUBLE
        assert DataType.parse("integer") is DataType.INT
        assert DataType.parse("varchar") is DataType.STRING
        assert DataType.parse("timestamp") is DataType.TIMESTAMP

    def test_parse_unknown(self):
        with pytest.raises(SchemaError):
            DataType.parse("decimal")

    def test_coerce_int_to_double(self):
        assert DataType.DOUBLE.coerce(3) == 3.0
        assert isinstance(DataType.DOUBLE.coerce(3), float)

    def test_coerce_rejects_bool_in_numeric(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(True)

    def test_coerce_rejects_string_in_numeric(self):
        with pytest.raises(SchemaError):
            DataType.DOUBLE.coerce("3.5")

    def test_coerce_rejects_float_in_int(self):
        with pytest.raises(SchemaError):
            DataType.INT.coerce(3.5)

    def test_coerce_string(self):
        assert DataType.STRING.coerce("abc") == "abc"
        with pytest.raises(SchemaError):
            DataType.STRING.coerce(42)


class TestField:
    def test_from_string_type(self):
        field = Field("rainrate", "double")
        assert field.dtype is DataType.DOUBLE
        assert field.is_numeric

    def test_string_not_numeric(self):
        assert not Field("name", DataType.STRING).is_numeric

    def test_timestamp_numeric(self):
        assert Field("t", DataType.TIMESTAMP).is_numeric

    def test_bad_names(self):
        with pytest.raises(SchemaError):
            Field("", DataType.INT)
        with pytest.raises(SchemaError):
            Field("9lives", DataType.INT)

    def test_equality(self):
        assert Field("a", "int") == Field("a", DataType.INT)
        assert Field("a", "int") != Field("a", "double")


class TestSchema:
    def test_weather_schema_shape(self):
        assert len(WEATHER_SCHEMA) == 8
        assert WEATHER_SCHEMA.attribute_names[0] == "samplingtime"
        assert WEATHER_SCHEMA.field("rainrate").dtype is DataType.DOUBLE

    def test_case_insensitive_lookup(self):
        assert "RainRate" in WEATHER_SCHEMA
        assert WEATHER_SCHEMA.canonical_name("RAINRATE") == "rainrate"

    def test_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            WEATHER_SCHEMA.field("altitude")
        assert "altitude" in GPS_SCHEMA

    def test_duplicate_fields_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [("a", "int"), ("A", "double")])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema("s", [])

    def test_projection_preserves_order(self):
        projected = WEATHER_SCHEMA.project(["windspeed", "samplingtime"])
        assert projected.attribute_names == ("samplingtime", "windspeed")

    def test_projection_empty_rejected(self):
        with pytest.raises(UnknownAttributeError):
            WEATHER_SCHEMA.project(["nothere"])

    def test_equality_by_fields(self):
        clone = Schema("other", WEATHER_SCHEMA.fields)
        assert clone == WEATHER_SCHEMA
