"""Regression pins for the PR 3 columnar-window edge cases.

The property/differential harnesses (``test_prop_window_equivalence``,
the StreamSQL fuzzer) cover these paths statistically; this module pins
them *directly at the operator level*, so a regression names the exact
mechanism instead of a shrunk counterexample:

- the out-of-order time-window path: the columnar instance must drop
  from pointer eviction into the seed-semantics scan fallback on the
  first timestamp regression — including mid-stream, including across
  the amortized-compaction threshold — and stay output-identical to the
  reference row path;
- the scan fallback must *not* be sticky: once a compaction sweep
  drains the disordered backlog (the retained buffer is ascending
  again) the instance re-arms the monotonic pointer path, and a later
  regression drops it back to scan — output-identical throughout;
- empty and singleton batch partitions: ``process_batch`` on the real
  batch path must tolerate degenerate partitions without corrupting
  window state, and any partitioning must emit exactly the same tuples
  as one monolithic batch and as the reference path.
"""

import pytest

from repro.streams.operators.window import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
    _ColumnarTimeWindow,
)
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import make_tuple

SCHEMA = Schema(
    "sensor",
    [Field("ts", DataType.TIMESTAMP), Field("v", DataType.DOUBLE)],
)

AGGREGATIONS = ("v:sum", "v:min", "v:max", "v:count", "v:lastval")


def make_operator(window_type, size, step, use_compiled):
    return AggregateOperator(
        WindowSpec(window_type, size, step),
        [AggregationSpec.parse(text) for text in AGGREGATIONS],
        use_compiled=use_compiled,
    )


def tuples_of(points):
    return [make_tuple(SCHEMA, {"ts": float(ts), "v": float(v)}) for ts, v in points]


def run_batches(operator, batches):
    output_schema = operator.output_schema(SCHEMA)
    emitted = []
    for batch in batches:
        emitted.extend(operator.process_batch(batch, output_schema))
    return [t.values for t in emitted]


def partitions(items, sizes):
    """Split *items* into consecutive chunks of the given *sizes*."""
    chunks, cursor = [], 0
    for size in sizes:
        chunks.append(items[cursor:cursor + size])
        cursor += size
    assert cursor == len(items), "partition sizes must cover the input"
    return chunks


class TestOutOfOrderTimeWindows:
    OOO_POINTS = [
        (0.0, 1.0), (1.0, 2.0), (2.0, 3.0),
        (1.5, 4.0),              # regression: drops into scan mode
        (3.0, 5.0), (2.5, 6.0), (6.0, 7.0), (5.0, 8.0), (9.0, 9.0),
    ]

    def test_first_regression_switches_to_scan_mode(self):
        operator = make_operator(WindowType.TIME, 2, 2, use_compiled=True)
        output_schema = operator.output_schema(SCHEMA)
        operator.process_batch(tuples_of(self.OOO_POINTS[:3]), output_schema)
        state = operator._columnar
        assert isinstance(state, _ColumnarTimeWindow) and state.monotonic
        operator.process_batch(tuples_of(self.OOO_POINTS[3:4]), output_schema)
        assert not state.monotonic

    @pytest.mark.parametrize("size,step", [(2, 2), (3, 1), (1, 3)])
    def test_scan_fallback_matches_reference(self, size, step):
        compiled = make_operator(WindowType.TIME, size, step, use_compiled=True)
        reference = make_operator(WindowType.TIME, size, step, use_compiled=False)
        stream = tuples_of(self.OOO_POINTS)
        got = run_batches(compiled, [stream])
        expected = run_batches(reference, [[t] for t in stream])
        assert got == expected
        assert got, "edge-case stream must actually emit windows"
        assert not compiled._columnar.monotonic

    def test_scan_mode_survives_compaction_threshold(self):
        # > 64 retained entries forces the amortized compaction sweep;
        # stale-entry removal must stay output-neutral.
        points = []
        ts = 0.0
        for i in range(300):
            ts += 0.5
            points.append((ts, float(i)))
            if i % 7 == 3:
                points.append((ts - 0.25, float(-i)))  # persistent disorder
        compiled = make_operator(WindowType.TIME, 4, 2, use_compiled=True)
        reference = make_operator(WindowType.TIME, 4, 2, use_compiled=False)
        stream = tuples_of(points)
        got = run_batches(compiled, partitions(stream, [50] * 7 + [len(stream) - 350]))
        expected = run_batches(reference, [[t] for t in stream])
        assert got == expected
        state = compiled._columnar
        assert not state.monotonic
        # The compaction threshold moved off its initial value and the
        # buffer did not grow with the whole stream.
        assert len(state.ts) < len(points)

    def test_regression_inside_one_batch_is_detected(self):
        # The disorder check walks timestamps *within* a batch, not just
        # across batch boundaries.
        operator = make_operator(WindowType.TIME, 2, 2, use_compiled=True)
        output_schema = operator.output_schema(SCHEMA)
        operator.process_batch(
            tuples_of([(0.0, 1.0), (3.0, 2.0), (1.0, 3.0), (4.0, 4.0)]),
            output_schema,
        )
        assert not operator._columnar.monotonic


class TestScanFallbackReArms:
    """The PR 5 regression pins: scan mode is left again once the
    disordered backlog has been compacted away, instead of pinning the
    stream to O(buffer) scans forever after one late timestamp."""

    @staticmethod
    def ooo_then_clean(n_clean):
        """One early regression, then a long strictly-ascending tail."""
        points = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0), (1.5, 4.0)]
        ts = 3.0
        for i in range(n_clean):
            points.append((ts, float(i)))
            ts += 1.0
        return points

    def test_rearm_after_backlog_compacts_away(self):
        operator = make_operator(WindowType.TIME, 2, 2, use_compiled=True)
        output_schema = operator.output_schema(SCHEMA)
        stream = tuples_of(self.ooo_then_clean(200))
        operator.process_batch(stream[:5], output_schema)
        state = operator._columnar
        assert not state.monotonic  # the regression flipped it
        operator.process_batch(stream[5:], output_schema)
        # The clean tail pushed the buffer past the compaction threshold,
        # the sweep removed the stale disordered prefix, and the retained
        # ascending tail re-armed the pointer path.
        assert state.monotonic
        assert state.last_ts == stream[-1]["ts"]

    def test_rearm_is_output_identical_to_reference(self):
        points = self.ooo_then_clean(200)
        # ...and a second disorder burst *after* the re-arm, so the
        # arm → scan → arm → scan → arm cycle is fully exercised.
        ts = points[-1][0]
        points += [(ts - 0.5, -1.0), (ts + 1.0, -2.0)]
        ts += 1.0
        for i in range(150):
            ts += 1.0
            points.append((ts, float(i)))
        for size, step in ((2, 2), (3, 1), (1, 3)):
            compiled = make_operator(WindowType.TIME, size, step, use_compiled=True)
            reference = make_operator(WindowType.TIME, size, step, use_compiled=False)
            stream = tuples_of(points)
            got = run_batches(compiled, partitions(stream, [7] * 50 + [len(stream) - 350]))
            expected = run_batches(reference, [[t] for t in stream])
            assert got == expected
            assert got
            # Both bursts compacted away: the stream ends re-armed.
            assert compiled._columnar.monotonic

    def test_regression_after_rearm_falls_back_to_scan(self):
        operator = make_operator(WindowType.TIME, 2, 2, use_compiled=True)
        output_schema = operator.output_schema(SCHEMA)
        stream = tuples_of(self.ooo_then_clean(200))
        operator.process_batch(stream, output_schema)
        state = operator._columnar
        assert state.monotonic
        last = stream[-1]["ts"]
        operator.process_batch(tuples_of([(last - 0.25, 9.0)]), output_schema)
        assert not state.monotonic

    def test_no_rearm_while_disorder_is_still_buffered(self):
        # Persistent disorder keeps inverted pairs inside the live tail,
        # so every compaction sees a non-ascending buffer and scan mode
        # survives — the old always-scan behaviour, now by necessity
        # rather than stickiness.
        points = [(0.0, 0.0)]
        ts = 0.0
        for i in range(300):
            ts += 0.5
            points.append((ts, float(i)))
            points.append((ts - 0.25, float(-i)))  # inversion every step
        compiled = make_operator(WindowType.TIME, 4, 2, use_compiled=True)
        reference = make_operator(WindowType.TIME, 4, 2, use_compiled=False)
        stream = tuples_of(points)
        got = run_batches(compiled, [stream])
        expected = run_batches(reference, [[t] for t in stream])
        assert got == expected
        assert not compiled._columnar.monotonic


class TestDegenerateBatchPartitions:
    POINTS = [(float(i), float((i * 7) % 11)) for i in range(40)]

    @pytest.mark.parametrize("window_type", [WindowType.TUPLE, WindowType.TIME])
    @pytest.mark.parametrize("size,step", [(5, 2), (3, 3), (2, 5)])
    def test_partitioning_is_output_invariant(self, window_type, size, step):
        stream = tuples_of(self.POINTS)
        reference = make_operator(window_type, size, step, use_compiled=False)
        expected = run_batches(reference, [[t] for t in stream])

        shapes = {
            "monolithic": [len(stream)],
            "singletons": [1] * len(stream),
            "ragged": [0, 1, 0, 7, 1, 1, 13, 0, 17],
        }
        shapes["ragged"].append(len(stream) - sum(shapes["ragged"]))
        for label, sizes in shapes.items():
            compiled = make_operator(window_type, size, step, use_compiled=True)
            got = run_batches(compiled, partitions(stream, sizes))
            assert got == expected, f"partition shape {label!r} diverged"
        assert expected, "workload must emit windows"

    @pytest.mark.parametrize("use_compiled", [True, False])
    @pytest.mark.parametrize("window_type", [WindowType.TUPLE, WindowType.TIME])
    def test_empty_batch_is_a_no_op(self, window_type, use_compiled):
        operator = make_operator(window_type, 3, 1, use_compiled=use_compiled)
        output_schema = operator.output_schema(SCHEMA)
        stream = tuples_of(self.POINTS[:10])
        emitted = []
        assert operator.process_batch([], output_schema) == []
        for tup in stream[:5]:
            emitted.extend(operator.process_batch([tup], output_schema))
            assert operator.process_batch([], output_schema) == []
            assert operator.process_batch((), output_schema) == []
        emitted.extend(operator.process_batch(stream[5:], output_schema))

        reference = make_operator(window_type, 3, 1, use_compiled=use_compiled)
        expected = run_batches(reference, [stream])
        assert [t.values for t in emitted] == expected

    def test_singleton_window_singleton_batches(self):
        # size=1/step=1: every tuple is its own window, in every mode.
        for use_compiled in (True, False):
            operator = make_operator(WindowType.TUPLE, 1, 1, use_compiled=use_compiled)
            stream = tuples_of(self.POINTS[:8])
            got = run_batches(operator, [[t] for t in stream])
            assert [row[4] for row in got] == [t["v"] for t in stream]  # lastval
            assert [row[3] for row in got] == [1] * len(stream)          # count
