"""Tests for stream tuples."""

import pytest

from repro.errors import SchemaError
from repro.streams.schema import DataType, Field, Schema
from repro.streams.tuples import StreamTuple, make_tuple, make_tuples

SCHEMA = Schema("s", [("t", "timestamp"), ("x", "double"), ("tag", "string")])


def sample(t=0.0, x=1.5, tag="a"):
    return make_tuple(SCHEMA, {"t": t, "x": x, "tag": tag})


class TestMakeTuple:
    def test_basic(self):
        tup = sample()
        assert tup["x"] == 1.5
        assert tup["TAG"] == "a"

    def test_coercion(self):
        tup = make_tuple(SCHEMA, {"t": 3, "x": 2, "tag": "b"})
        assert isinstance(tup["x"], float)

    def test_missing_attribute(self):
        with pytest.raises(SchemaError):
            make_tuple(SCHEMA, {"t": 0.0, "x": 1.0})

    def test_extra_attribute(self):
        with pytest.raises(SchemaError):
            make_tuple(SCHEMA, {"t": 0.0, "x": 1.0, "tag": "a", "zz": 1})

    def test_duplicate_case_keys(self):
        with pytest.raises(SchemaError):
            make_tuple(SCHEMA, {"x": 1.0, "X": 2.0, "t": 0.0, "tag": "a"})

    def test_make_tuples(self):
        tuples = make_tuples(
            SCHEMA, [{"t": 0, "x": 1, "tag": "a"}, {"t": 1, "x": 2, "tag": "b"}]
        )
        assert len(tuples) == 2


class TestStreamTuple:
    def test_wrong_arity(self):
        with pytest.raises(SchemaError):
            StreamTuple(SCHEMA, (1.0, 2.0))

    def test_as_dict_order(self):
        assert list(sample().as_dict()) == ["t", "x", "tag"]

    def test_projection(self):
        projected_schema = SCHEMA.project(["x"])
        projected = sample().project(projected_schema)
        assert projected.values == (1.5,)

    def test_contains(self):
        assert "x" in sample()
        assert "zz" not in sample()

    def test_get_default(self):
        assert sample().get("zz", 7) == 7

    def test_equality_and_hash(self):
        assert sample() == sample()
        assert hash(sample()) == hash(sample())
        assert sample(x=2.0) != sample()

    def test_iteration(self):
        assert list(sample()) == [0.0, 1.5, "a"]
