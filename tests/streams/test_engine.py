"""Tests for the stream engine, catalog and handles."""

import pytest

from repro.errors import EngineError, UnknownHandleError, UnknownStreamError
from repro.streams.catalog import StreamCatalog
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.handles import StreamHandle
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA, Schema

SIMPLE = Schema("s", [("x", "int")])


class TestCatalog:
    def test_register_and_get(self):
        catalog = StreamCatalog()
        catalog.register("s", SIMPLE)
        assert catalog.get("S").schema == SIMPLE
        assert "s" in catalog and "S" in catalog
        assert len(catalog) == 1

    def test_duplicate_rejected(self):
        catalog = StreamCatalog()
        catalog.register("s", SIMPLE)
        with pytest.raises(EngineError):
            catalog.register("S", SIMPLE)

    def test_unknown_stream(self):
        with pytest.raises(UnknownStreamError):
            StreamCatalog().get("nope")


class TestHandles:
    def test_uri_round_trip(self):
        handle = StreamHandle("dsms.local", "q42")
        parsed = StreamHandle.parse(handle.uri)
        assert parsed == handle
        assert parsed.query_id == "q42"

    def test_allocate_unique(self):
        first = StreamHandle.allocate("h")
        second = StreamHandle.allocate("h")
        assert first.uri != second.uri

    def test_parse_rejects_garbage(self):
        with pytest.raises(EngineError):
            StreamHandle.parse("http://x/y")
        with pytest.raises(EngineError):
            StreamHandle.parse("stream://hostonly")


class TestEngine:
    def make_engine(self):
        engine = StreamEngine()
        engine.register_input_stream("s", SIMPLE)
        return engine

    def test_register_and_read(self):
        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 2")))
        engine.push_many("s", [{"x": v} for v in (1, 3, 5)])
        assert [t["x"] for t in engine.read(handle)] == [3, 5]

    def test_read_limit(self):
        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        engine.push_many("s", [{"x": v} for v in range(1, 6)])
        assert [t["x"] for t in engine.read(handle, limit=2)] == [4, 5]

    def test_queries_only_see_future_tuples(self):
        engine = self.make_engine()
        engine.push("s", {"x": 1})
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        engine.push("s", {"x": 2})
        assert [t["x"] for t in engine.read(handle)] == [2]

    def test_multiple_queries_same_stream(self):
        engine = self.make_engine()
        low = engine.register_query(QueryGraph("s").append(FilterOperator("x < 3")))
        high = engine.register_query(QueryGraph("s").append(FilterOperator("x >= 3")))
        engine.push_many("s", [{"x": v} for v in (1, 3)])
        assert len(engine.read(low)) == 1
        assert len(engine.read(high)) == 1

    def test_withdraw_stops_processing(self):
        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        engine.push("s", {"x": 1})
        engine.withdraw(handle)
        with pytest.raises(UnknownHandleError):
            engine.read(handle)
        with pytest.raises(UnknownHandleError):
            engine.withdraw(handle)
        engine.push("s", {"x": 2})  # must not crash

    def test_invalid_graph_changes_nothing(self):
        engine = self.make_engine()
        bad = QueryGraph("s").append(FilterOperator("zz > 0"))
        with pytest.raises(Exception):
            engine.register_query(bad)
        assert len(engine) == 0

    def test_unknown_source_stream(self):
        engine = self.make_engine()
        with pytest.raises(UnknownStreamError):
            engine.register_query(QueryGraph("nope"))

    def test_duplicate_handle_rejected(self):
        engine = self.make_engine()
        handle = StreamHandle("dsms.local", "fixed")
        engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")), handle)
        with pytest.raises(EngineError):
            engine.register_query(
                QueryGraph("s").append(FilterOperator("x > 1")), handle
            )

    def test_subscribe_to_output(self):
        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        subscription = engine.subscribe(handle)
        engine.push("s", {"x": 5})
        assert [t["x"] for t in subscription.drain()] == [5]

    def test_register_streamsql_declares_stream(self):
        engine = StreamEngine()
        script = (
            "CREATE INPUT STREAM w (t timestamp, x double);\n"
            "CREATE OUTPUT STREAM output;\n"
            "SELECT * FROM w WHERE x > 1 INTO output;\n"
        )
        handle = engine.register_streamsql(script)
        engine.push("w", {"t": 0.0, "x": 2.0})
        assert len(engine.read(handle)) == 1

    def test_register_streamsql_schema_conflict(self):
        engine = StreamEngine()
        engine.register_input_stream("w", SIMPLE)
        script = (
            "CREATE INPUT STREAM w (t timestamp, x double);\n"
            "CREATE OUTPUT STREAM output;\n"
            "SELECT * FROM w WHERE x > 1 INTO output;\n"
        )
        with pytest.raises(EngineError):
            engine.register_streamsql(script)

    def test_total_registered_counter(self):
        engine = self.make_engine()
        engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 1")))
        engine.withdraw(handle)
        assert engine.total_registered == 2
        assert len(engine.active_queries()) == 1


def make_windowed_graph():
    """Filter + sliding-window aggregate — sensitive to tuple ordering."""
    from repro.streams.operators import AggregateOperator, AggregationSpec, WindowSpec, WindowType

    return (
        QueryGraph("s")
        .append(FilterOperator("x > 1"))
        .append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 3, 2),
                [AggregationSpec.parse("x:avg")],
            )
        )
    )


class TestBatchedDispatch:
    """`push_batch` must be output-equivalent to N single pushes."""

    def make_engine(self):
        engine = StreamEngine()
        engine.register_input_stream("s", SIMPLE)
        return engine

    RECORDS = [{"x": v} for v in (1, 3, 5, 2, 7, 0, 4, 6, 9, 8)]

    def dual_run(self, build_queries, records=None, batch_via="push_batch"):
        """Run the same input per-tuple and batched; return both outputs."""
        records = records if records is not None else self.RECORDS
        outputs = []
        for mode in ("single", "batch"):
            engine = self.make_engine()
            handles = build_queries(engine)
            if mode == "single":
                for record in records:
                    engine.push("s", record)
            elif batch_via == "push_batch":
                assert engine.push_batch("s", records) == len(records)
            else:
                assert engine.push_many("s", records) == len(records)
            outputs.append([tuple(engine.read(h)) for h in handles])
        return outputs

    def test_filter_outputs_identical(self):
        single, batched = self.dual_run(
            lambda e: [e.register_query(QueryGraph("s").append(FilterOperator("x > 3")))]
        )
        assert single == batched

    def test_window_aggregate_behavior_identical(self):
        single, batched = self.dual_run(
            lambda e: [e.register_query(make_windowed_graph())]
        )
        assert single == batched

    def test_multi_query_fanout_identical(self):
        def build(engine):
            return [
                engine.register_query(QueryGraph("s").append(FilterOperator(f"x > {i}")))
                for i in range(4)
            ] + [engine.register_query(make_windowed_graph())]

        single, batched = self.dual_run(build)
        assert single == batched

    def test_push_many_uses_batched_path(self):
        single, batched = self.dual_run(
            lambda e: [e.register_query(make_windowed_graph())],
            batch_via="push_many",
        )
        assert single == batched

    def test_empty_batch(self):
        engine = self.make_engine()
        assert engine.push_batch("s", []) == 0

    def test_batch_accepts_stream_tuples(self):
        from repro.streams.tuples import make_tuple

        engine = self.make_engine()
        handle = engine.register_query(QueryGraph("s").append(FilterOperator("x > 0")))
        engine.push_batch("s", [make_tuple(SIMPLE, {"x": 2}), {"x": 3}])
        assert [t["x"] for t in engine.read(handle)] == [2, 3]

    def test_withdraw_mid_batch_matches_single_appends(self):
        """A query withdrawn while a batch is in flight behaves exactly
        as under single appends: it stops at the withdrawal point, and
        nothing crashes on its closed output stream."""
        results = []
        for mode in ("single", "batch"):
            engine = self.make_engine()
            # The withdrawer listener is attached to the source stream
            # *before* the victim query registers, so it fires first for
            # each tuple — including the marker that triggers withdrawal.
            source = engine.catalog.get("s")
            victim_box = {}

            def withdraw_on_marker(tup, engine=engine, victim_box=victim_box):
                if tup["x"] == 99:
                    engine.withdraw(victim_box["handle"])

            source.add_listener(withdraw_on_marker)
            victim = engine.register_query(
                QueryGraph("s").append(FilterOperator("x > 0"))
            )
            victim_box["handle"] = victim
            subscription = engine.subscribe(victim)
            records = [{"x": v} for v in (1, 2, 99, 3, 4)]
            if mode == "single":
                for record in records:
                    engine.push("s", record)
            else:
                engine.push_batch("s", records)
            results.append([t["x"] for t in subscription.drain()])
            with pytest.raises(UnknownHandleError):
                engine.read(victim)
        single, batched = results
        assert single == batched == [1, 2]

    def test_withdrawn_query_receives_nothing_after_batch(self):
        engine = self.make_engine()
        handle = engine.register_query(
            QueryGraph("s").append(FilterOperator("x > 0"))
        )
        subscription = engine.subscribe(handle)
        engine.push_batch("s", [{"x": 1}])
        engine.withdraw(handle)
        engine.push_batch("s", [{"x": 2}, {"x": 3}])  # must not crash
        assert [t["x"] for t in subscription.drain()] == [1]
