"""Tests for streams and subscriptions."""

import pytest

from repro.errors import StreamError
from repro.streams.schema import Schema
from repro.streams.stream import Stream
from repro.streams.tuples import make_tuple

SCHEMA = Schema("s", [("x", "int")])


def tuples(*values):
    return [make_tuple(SCHEMA, {"x": v}) for v in values]


class TestAppend:
    def test_append_and_snapshot(self):
        stream = Stream("s", SCHEMA)
        stream.extend(tuples(1, 2, 3))
        assert [t["x"] for t in stream.snapshot()] == [1, 2, 3]
        assert stream.total_appended == 3

    def test_schema_mismatch(self):
        other = Schema("o", [("y", "int")])
        stream = Stream("s", SCHEMA)
        with pytest.raises(StreamError):
            stream.append(make_tuple(other, {"y": 1}))

    def test_closed_stream_rejects(self):
        stream = Stream("s", SCHEMA)
        stream.close()
        with pytest.raises(StreamError):
            stream.extend(tuples(1))

    def test_listeners_invoked_per_tuple(self):
        stream = Stream("s", SCHEMA)
        seen = []
        stream.add_listener(lambda t: seen.append(t["x"]))
        stream.extend(tuples(1, 2))
        assert seen == [1, 2]

    def test_remove_listener(self):
        stream = Stream("s", SCHEMA)
        seen = []
        callback = lambda t: seen.append(t["x"])
        stream.add_listener(callback)
        stream.remove_listener(callback)
        stream.extend(tuples(1))
        assert seen == []


class TestAppendBatch:
    def test_returns_count_and_appends_in_order(self):
        stream = Stream("s", SCHEMA)
        assert stream.append_batch(tuples(1, 2, 3)) == 3
        assert [t["x"] for t in stream.snapshot()] == [1, 2, 3]
        assert stream.total_appended == 3

    def test_empty_batch(self):
        stream = Stream("s", SCHEMA)
        assert stream.append_batch([]) == 0

    def test_listener_interleaving_matches_single_appends(self):
        """Each tuple reaches every listener before the next tuple does,
        exactly like N single appends."""
        calls = []
        stream = Stream("s", SCHEMA)
        stream.add_listener(lambda t: calls.append(("a", t["x"])))
        stream.add_listener(lambda t: calls.append(("b", t["x"])))
        stream.append_batch(tuples(1, 2))
        assert calls == [("a", 1), ("b", 1), ("a", 2), ("b", 2)]

    def test_atomic_validation(self):
        """A batch with one bad tuple changes nothing."""
        other = Schema("o", [("y", "int")])
        stream = Stream("s", SCHEMA)
        seen = []
        stream.add_listener(lambda t: seen.append(t["x"]))
        batch = tuples(1, 2) + [make_tuple(other, {"y": 9})]
        with pytest.raises(StreamError):
            stream.append_batch(batch)
        assert stream.total_appended == 0
        assert seen == []

    def test_closed_stream_rejects_batch(self):
        stream = Stream("s", SCHEMA)
        stream.close()
        with pytest.raises(StreamError):
            stream.append_batch(tuples(1))

    def test_overflow_trimmed_once_at_end(self):
        stream = Stream("s", SCHEMA, max_buffer=3)
        stream.append_batch(tuples(1, 2, 3, 4, 5))
        assert [t["x"] for t in stream.snapshot()] == [3, 4, 5]
        assert stream.total_appended == 5


class TestBoundedBuffer:
    def test_tail_retained(self):
        stream = Stream("s", SCHEMA, max_buffer=3)
        stream.extend(tuples(1, 2, 3, 4, 5))
        assert [t["x"] for t in stream.snapshot()] == [3, 4, 5]
        assert stream.total_appended == 5

    def test_fallen_behind_subscription_raises(self):
        stream = Stream("s", SCHEMA, max_buffer=2)
        subscription = stream.subscribe()
        stream.extend(tuples(1, 2, 3, 4))
        with pytest.raises(StreamError):
            subscription.poll()

    def test_bad_buffer_size(self):
        with pytest.raises(StreamError):
            Stream("s", SCHEMA, max_buffer=0)


class TestSubscription:
    def test_from_start(self):
        stream = Stream("s", SCHEMA)
        stream.extend(tuples(1, 2))
        subscription = stream.subscribe(from_start=True)
        assert [t["x"] for t in subscription.drain()] == [1, 2]

    def test_from_now(self):
        stream = Stream("s", SCHEMA)
        stream.extend(tuples(1, 2))
        subscription = stream.subscribe(from_start=False)
        stream.extend(tuples(3))
        assert [t["x"] for t in subscription.drain()] == [3]

    def test_poll_limit_and_pending(self):
        stream = Stream("s", SCHEMA)
        stream.extend(tuples(1, 2, 3))
        subscription = stream.subscribe()
        assert subscription.pending == 3
        assert [t["x"] for t in subscription.poll(2)] == [1, 2]
        assert subscription.pending == 1

    def test_independent_positions(self):
        stream = Stream("s", SCHEMA)
        first = stream.subscribe()
        second = stream.subscribe()
        stream.extend(tuples(1, 2))
        first.drain()
        assert second.pending == 2
