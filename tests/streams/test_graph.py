"""Tests for query graphs."""

import pytest

from repro.errors import GraphError, SchemaError
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.tuples import make_tuple
from tests.conftest import build_nea_policy_graph


def weather_tuple(rainrate, t=0.0, windspeed=1.0):
    return make_tuple(
        WEATHER_SCHEMA,
        {
            "samplingtime": t, "temperature": 30.0, "humidity": 70.0,
            "solarradiation": 100.0, "rainrate": rainrate,
            "windspeed": windspeed, "winddirection": 0, "barometer": 1010.0,
        },
    )


class TestConstruction:
    def test_append_chaining(self):
        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        assert len(graph) == 1
        assert not graph.is_passthrough

    def test_needs_source(self):
        with pytest.raises(GraphError):
            QueryGraph("")

    def test_append_rejects_non_operator(self):
        with pytest.raises(GraphError):
            QueryGraph("weather").append("not an operator")

    def test_single_accessors(self):
        graph = build_nea_policy_graph()
        assert graph.filter_operator is not None
        assert graph.map_operator is not None
        assert graph.aggregate_operator is not None

    def test_single_raises_on_duplicates(self):
        graph = QueryGraph("weather")
        graph.append(FilterOperator("rainrate > 5"))
        graph.append(FilterOperator("windspeed > 1"))
        with pytest.raises(GraphError):
            graph.filter_operator


class TestValidation:
    def test_nea_graph_output_schema(self):
        graph = build_nea_policy_graph()
        out = graph.validate(WEATHER_SCHEMA)
        assert out.attribute_names == (
            "lastvalsamplingtime", "avgrainrate", "maxwindspeed",
        )

    def test_schema_trace(self):
        graph = build_nea_policy_graph()
        trace = graph.schema_trace(WEATHER_SCHEMA)
        assert len(trace) == 4
        assert trace[0] == WEATHER_SCHEMA
        assert trace[1] == WEATHER_SCHEMA  # filter preserves
        assert trace[2].attribute_names == ("samplingtime", "rainrate", "windspeed")

    def test_aggregate_after_dropping_attribute_fails(self):
        graph = QueryGraph("weather")
        graph.append(MapOperator(["samplingtime"]))
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 2, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
        with pytest.raises(SchemaError):
            graph.validate(WEATHER_SCHEMA)


class TestExecution:
    def test_chain_execution(self):
        graph = build_nea_policy_graph()
        instance = graph.instantiate(WEATHER_SCHEMA)
        outputs = []
        # 12 rainy tuples: windows of 5 advance 2 → outputs at 5,7,9,11.
        for i in range(12):
            outputs.extend(instance.process(weather_tuple(10.0 + i, t=float(i))))
        assert len(outputs) == 4
        assert outputs[0]["avgrainrate"] == pytest.approx(12.0)

    def test_filtered_out_tuples_do_not_feed_window(self):
        graph = QueryGraph("weather")
        graph.append(FilterOperator("rainrate > 5"))
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 2, 2),
                [AggregationSpec.parse("rainrate:sum")],
            )
        )
        instance = graph.instantiate(WEATHER_SCHEMA)
        outputs = []
        for rainrate in (10, 1, 1, 20):  # only 10 and 20 pass
            outputs.extend(instance.process(weather_tuple(rainrate)))
        assert [t["sumrainrate"] for t in outputs] == [30.0]

    def test_process_many(self):
        graph = QueryGraph("weather").append(FilterOperator("rainrate > 5"))
        instance = graph.instantiate(WEATHER_SCHEMA)
        outputs = instance.process_many([weather_tuple(1), weather_tuple(9)])
        assert len(outputs) == 1

    def test_instances_do_not_share_state(self):
        graph = QueryGraph("weather").append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 2, 2),
                [AggregationSpec.parse("rainrate:sum")],
            )
        )
        first = graph.instantiate(WEATHER_SCHEMA)
        second = graph.instantiate(WEATHER_SCHEMA)
        first.process(weather_tuple(1))
        assert second.process(weather_tuple(2)) == []  # own window state

    def test_fresh_copy_independent(self):
        graph = build_nea_policy_graph()
        clone = graph.fresh_copy("clone")
        assert clone.name == "clone"
        assert len(clone) == len(graph)
        assert clone.operators[0] is not graph.operators[0]

    def test_describe_mentions_operators(self):
        description = build_nea_policy_graph().describe()
        assert "rainrate > 5" in description
        assert "avg(rainrate)" in description
