"""Tests for the condition parser."""

import pytest

from repro.errors import ExpressionSyntaxError, ExpressionTypeError
from repro.expr.ast import (
    AndExpression,
    NotExpression,
    Operator,
    OrExpression,
    SimpleExpression,
    TrueExpression,
)
from repro.expr.parser import parse_condition


class TestSimple:
    def test_greater_than(self):
        expr = parse_condition("rainrate > 5")
        assert isinstance(expr, SimpleExpression)
        assert expr.attribute == "rainrate"
        assert expr.op is Operator.GT
        assert expr.value == 5

    def test_attribute_lowered(self):
        expr = parse_condition("RainRate > 5")
        assert expr.attribute == "rainrate"

    @pytest.mark.parametrize(
        "text,op",
        [("x < 1", Operator.LT), ("x <= 1", Operator.LE), ("x >= 1", Operator.GE),
         ("x = 1", Operator.EQ), ("x == 1", Operator.EQ), ("x != 1", Operator.NE),
         ("x <> 1", Operator.NE)],
    )
    def test_operators(self, text, op):
        assert parse_condition(text).op is op

    def test_reversed_orientation_normalised(self):
        expr = parse_condition("5 < rainrate")
        assert expr.attribute == "rainrate"
        assert expr.op is Operator.GT
        assert expr.value == 5

    def test_reversed_equality(self):
        expr = parse_condition("40 = a")
        assert expr.op is Operator.EQ

    def test_string_comparison(self):
        expr = parse_condition("city = 'singapore'")
        assert expr.value == "singapore"

    def test_string_with_inequality_rejected(self):
        with pytest.raises(ExpressionTypeError):
            parse_condition("city > 'singapore'")

    def test_true_literal(self):
        assert isinstance(parse_condition("TRUE"), TrueExpression)


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        expr = parse_condition("a > 1 OR b > 2 AND c > 3")
        assert isinstance(expr, OrExpression)
        assert isinstance(expr.children[1], AndExpression)

    def test_parentheses_override(self):
        expr = parse_condition("(a > 1 OR b > 2) AND c > 3")
        assert isinstance(expr, AndExpression)
        assert isinstance(expr.children[0], OrExpression)

    def test_not_binds_tightest(self):
        expr = parse_condition("NOT a > 1 AND b > 2")
        assert isinstance(expr, AndExpression)
        assert isinstance(expr.children[0], NotExpression)

    def test_double_not(self):
        expr = parse_condition("NOT NOT a > 1")
        assert isinstance(expr, NotExpression)
        assert isinstance(expr.child, NotExpression)

    def test_flattening_of_chained_and(self):
        expr = parse_condition("a > 1 AND b > 2 AND c > 3")
        assert isinstance(expr, AndExpression)
        assert len(expr.children) == 3


class TestErrors:
    def test_empty_condition(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("   ")

    def test_trailing_garbage(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("a > 1 b")

    def test_missing_rhs(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("a >")

    def test_missing_operator(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("a 5")

    def test_unbalanced_paren(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("(a > 1")

    def test_two_literals(self):
        with pytest.raises(ExpressionSyntaxError):
            parse_condition("1 > 2")


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "rainrate > 5",
            "a > 1 AND b < 2",
            "a > 1 OR b < 2 AND c = 3",
            "NOT (a != 40)",
            "city = 'singapore' AND rainrate >= 2.5",
        ],
    )
    def test_parse_render_parse(self, text):
        first = parse_condition(text)
        rendered = first.to_condition_string()
        second = parse_condition(rendered)
        assert second.to_condition_string() == rendered
