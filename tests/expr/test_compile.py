"""Unit tests for schema-specialised condition compilation."""

import pytest

from repro.errors import ExpressionTypeError, UnknownAttributeError
from repro.expr.ast import Operator, SimpleExpression
from repro.expr.compile import (
    compile_batch,
    compile_predicate,
    compile_row_predicate,
)
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.streams.schema import Schema
from repro.streams.tuples import make_tuple

SCHEMA = Schema(
    "s", [("t", "timestamp"), ("x", "double"), ("n", "int"), ("tag", "string")]
)


def tuples(*rows):
    return [
        make_tuple(SCHEMA, {"t": float(i), "x": x, "n": n, "tag": tag})
        for i, (x, n, tag) in enumerate(rows)
    ]


class TestCompiledSemantics:
    CONDITIONS = [
        "TRUE",
        "x > 2",
        "x <= 2 AND n != 3",
        "x > 10 OR tag = 'a'",
        "NOT (x > 2 AND tag != 'b')",
        "n >= 1 AND (tag = 'a' OR tag = 'b') AND x < 100",
    ]

    @pytest.mark.parametrize("text", CONDITIONS)
    def test_matches_interpreter(self, text):
        expression = parse_condition(text)
        predicate = compile_predicate(expression, SCHEMA)
        mask = compile_batch(expression, SCHEMA)
        batch = tuples((1.0, 1, "a"), (3.0, 3, "b"), (2.0, 0, "c"), (50.0, 9, "a"))
        expected = [evaluate(expression, tup) for tup in batch]
        assert [predicate(tup) for tup in batch] == expected
        assert mask(batch) == expected

    def test_row_predicate_over_raw_values(self):
        expression = parse_condition("x > 2 AND n < 5")
        row_predicate = compile_row_predicate(expression, SCHEMA)
        assert row_predicate((0.0, 3.0, 4, "a")) is True
        assert row_predicate((0.0, 1.0, 4, "a")) is False

    def test_empty_batch_mask(self):
        mask = compile_batch(parse_condition("x > 2"), SCHEMA)
        assert mask([]) == []

    def test_short_circuit_like_interpreter(self):
        expression = parse_condition("x > 1 AND n > 2")
        predicate = compile_predicate(expression, SCHEMA)
        batch = tuples((0.0, 99, "a"))
        assert predicate(batch[0]) is evaluate(expression, batch[0]) is False

    def test_case_insensitive_attribute_resolution(self):
        expression = parse_condition("TAG = 'a' AND X > 0")
        predicate = compile_predicate(expression, SCHEMA)
        batch = tuples((1.0, 1, "a"), (1.0, 1, "b"))
        assert [predicate(tup) for tup in batch] == [True, False]


class TestCompileValidation:
    def test_unknown_attribute(self):
        with pytest.raises(UnknownAttributeError):
            compile_predicate(parse_condition("zz > 1"), SCHEMA)

    def test_string_numeric_mismatch(self):
        with pytest.raises(ExpressionTypeError):
            compile_predicate(parse_condition("tag != 3"), SCHEMA)
        with pytest.raises(ExpressionTypeError):
            compile_predicate(
                SimpleExpression("x", Operator.EQ, "abc"), SCHEMA
            )

    def test_boolean_attribute_rejected(self):
        schema = Schema("b", [("flag", "bool"), ("x", "int")])
        with pytest.raises(ExpressionTypeError):
            compile_predicate(parse_condition("flag = 1"), schema)


class TestCompileSafety:
    def test_string_literals_cannot_escape(self):
        """Hostile string literals are embedded via repr, never spliced."""
        payload = "') or __import__('os').system('true') or ('"
        expression = SimpleExpression("tag", Operator.EQ, payload)
        predicate = compile_predicate(expression, SCHEMA)
        match = make_tuple(SCHEMA, {"t": 0.0, "x": 0.0, "n": 0, "tag": payload})
        miss = make_tuple(SCHEMA, {"t": 0.0, "x": 0.0, "n": 0, "tag": "a"})
        assert predicate(match) is True
        assert predicate(miss) is False

    def test_non_finite_literals_ride_constants(self):
        expression = SimpleExpression("x", Operator.NE, float("nan"))
        predicate = compile_predicate(expression, SCHEMA)
        tup = make_tuple(SCHEMA, {"t": 0.0, "x": 1.0, "n": 0, "tag": "a"})
        assert predicate(tup) is evaluate(expression, tup) is True
