"""Tests for checkTwoSimpleExpression and its set algebra.

The paper notes the check needs 6² = 36 operator-pair comparisons; the
exhaustive test below validates every pair against a brute-force oracle
over a dense numeric grid.
"""

import pytest

from repro.expr.ast import Operator, SimpleExpression
from repro.expr.satisfiability import (
    PairVerdict,
    check_two_simple_expressions,
    conjunction_verdict,
    dnf_verdict,
    intersection_empty,
    is_subset,
    satisfies,
)

OPS = list(Operator)
#: Dense grid covering strictly-between, equal and outside cases for the
#: value pairs used below.
GRID = [x / 4.0 for x in range(-20, 41)]


def oracle_sets(s1, s2):
    in_both = [x for x in GRID if satisfies(s1, x) and satisfies(s2, x)]
    only_s2 = [x for x in GRID if satisfies(s2, x) and not satisfies(s1, x)]
    return in_both, only_s2


class TestExhaustiveOperatorPairs:
    """All 36 op pairs × three value relations, against the grid oracle.

    The grid contains points strictly between, equal to and outside the
    tested bounds, so for these operators grid-emptiness coincides with
    real-domain emptiness.
    """

    @pytest.mark.parametrize("op1", OPS)
    @pytest.mark.parametrize("op2", OPS)
    @pytest.mark.parametrize("v1,v2", [(2.0, 5.0), (5.0, 5.0), (5.0, 2.0)])
    def test_intersection_matches_oracle(self, op1, op2, v1, v2):
        s1 = SimpleExpression("x", op1, v1)
        s2 = SimpleExpression("x", op2, v2)
        in_both, _ = oracle_sets(s1, s2)
        assert intersection_empty(s1, s2) == (not in_both)

    @pytest.mark.parametrize("op1", OPS)
    @pytest.mark.parametrize("op2", OPS)
    @pytest.mark.parametrize("v1,v2", [(2.0, 5.0), (5.0, 5.0), (5.0, 2.0)])
    def test_verdict_matches_oracle(self, op1, op2, v1, v2):
        policy = SimpleExpression("x", op1, v1)
        user = SimpleExpression("x", op2, v2)
        in_both, only_user = oracle_sets(policy, user)
        verdict = check_two_simple_expressions(policy, user)
        if not in_both:
            assert verdict is PairVerdict.NR
        elif only_user:
            assert verdict is PairVerdict.PR
        else:
            assert verdict is PairVerdict.OK

    @pytest.mark.parametrize("op1", OPS)
    @pytest.mark.parametrize("op2", OPS)
    @pytest.mark.parametrize("v1,v2", [(2.0, 5.0), (5.0, 5.0), (5.0, 2.0)])
    def test_subset_matches_oracle(self, op1, op2, v1, v2):
        inner = SimpleExpression("x", op1, v1)
        outer = SimpleExpression("x", op2, v2)
        grid_subset = all(
            satisfies(outer, x) for x in GRID if satisfies(inner, x)
        )
        exact = is_subset(inner, outer)
        # Exact subset implies grid subset; the converse can fail only
        # when the witness lies off-grid, which these values avoid.
        if exact:
            assert grid_subset
        else:
            assert not grid_subset


class TestPaperFigure5:
    """Figure 5's case: S1 = x >= v1 (policy), S2 = x <= v2 (user)."""

    def test_disjoint_when_v1_above_v2(self):
        policy = SimpleExpression("x", Operator.GE, 10)
        user = SimpleExpression("x", Operator.LE, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.NR

    def test_pr_when_ranges_overlap(self):
        policy = SimpleExpression("x", Operator.GE, 3)
        user = SimpleExpression("x", Operator.LE, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.PR

    def test_touching_bounds_still_satisfiable(self):
        policy = SimpleExpression("x", Operator.GE, 5)
        user = SimpleExpression("x", Operator.LE, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.PR


class TestExample3:
    """Section 3.5's Example 3 filters."""

    def test_pr_case(self):
        policy = SimpleExpression("a", Operator.GT, 8)
        user = SimpleExpression("a", Operator.GT, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.PR

    def test_ok_when_user_tighter(self):
        policy = SimpleExpression("a", Operator.GT, 5)
        user = SimpleExpression("a", Operator.GT, 8)
        assert check_two_simple_expressions(policy, user) is PairVerdict.OK

    def test_nr_case(self):
        policy = SimpleExpression("a", Operator.LT, 4)
        user = SimpleExpression("a", Operator.GT, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.NR


class TestStrings:
    def test_equal_strings_ok(self):
        policy = SimpleExpression("city", Operator.EQ, "sg")
        user = SimpleExpression("city", Operator.EQ, "sg")
        assert check_two_simple_expressions(policy, user) is PairVerdict.OK

    def test_different_strings_nr(self):
        policy = SimpleExpression("city", Operator.EQ, "sg")
        user = SimpleExpression("city", Operator.EQ, "kl")
        assert check_two_simple_expressions(policy, user) is PairVerdict.NR

    def test_ne_vs_eq(self):
        policy = SimpleExpression("city", Operator.NE, "sg")
        user = SimpleExpression("city", Operator.EQ, "sg")
        assert check_two_simple_expressions(policy, user) is PairVerdict.NR

    def test_eq_subset_of_ne(self):
        policy = SimpleExpression("city", Operator.NE, "kl")
        user = SimpleExpression("city", Operator.EQ, "sg")
        assert check_two_simple_expressions(policy, user) is PairVerdict.OK

    def test_ne_vs_ne_same_value_ok(self):
        policy = SimpleExpression("city", Operator.NE, "sg")
        user = SimpleExpression("city", Operator.NE, "sg")
        assert check_two_simple_expressions(policy, user) is PairVerdict.OK

    def test_ne_vs_ne_different_values_pr(self):
        policy = SimpleExpression("city", Operator.NE, "sg")
        user = SimpleExpression("city", Operator.NE, "kl")
        assert check_two_simple_expressions(policy, user) is PairVerdict.PR

    def test_string_vs_number_nr(self):
        policy = SimpleExpression("x", Operator.EQ, "five")
        user = SimpleExpression("x", Operator.GT, 5)
        assert check_two_simple_expressions(policy, user) is PairVerdict.NR


class TestDifferentAttributes:
    def test_no_interaction(self):
        policy = SimpleExpression("a", Operator.LT, 0)
        user = SimpleExpression("b", Operator.GT, 10)
        assert check_two_simple_expressions(policy, user) is PairVerdict.OK
        assert not intersection_empty(policy, user)


class TestConjunctionVerdict:
    def test_contradiction_within_same_origin_is_nr(self):
        literals = [
            (SimpleExpression("a", Operator.LT, 10), "user"),
            (SimpleExpression("a", Operator.EQ, 40), "user"),
        ]
        assert conjunction_verdict(literals) is PairVerdict.NR

    def test_same_origin_tightening_is_not_pr(self):
        literals = [
            (SimpleExpression("a", Operator.GT, 20), "user"),
            (SimpleExpression("a", Operator.LT, 30), "user"),
        ]
        assert conjunction_verdict(literals) is PairVerdict.OK

    def test_cross_origin_pr(self):
        literals = [
            (SimpleExpression("a", Operator.GT, 8), "policy"),
            (SimpleExpression("a", Operator.GT, 5), "user"),
        ]
        assert conjunction_verdict(literals) is PairVerdict.PR

    def test_nr_beats_pr(self):
        literals = [
            (SimpleExpression("a", Operator.GT, 8), "policy"),
            (SimpleExpression("a", Operator.GT, 5), "user"),
            (SimpleExpression("a", Operator.LT, 0), "user"),
        ]
        assert conjunction_verdict(literals) is PairVerdict.NR


class TestDnfVerdict:
    def test_all_nr(self):
        assert dnf_verdict([PairVerdict.NR, PairVerdict.NR]) is PairVerdict.NR

    def test_mixed_nr_pr_gives_pr(self):
        assert dnf_verdict([PairVerdict.NR, PairVerdict.PR]) is PairVerdict.PR

    def test_any_ok_clears(self):
        assert dnf_verdict([PairVerdict.NR, PairVerdict.OK]) is PairVerdict.OK

    def test_empty_dnf_is_nr(self):
        assert dnf_verdict([]) is PairVerdict.NR


class TestImplies:
    """``implies`` is the shared-plan subsumption test: sound (True only
    when entailment really holds) but deliberately incomplete."""

    def expr(self, text):
        from repro.expr.parser import parse_condition

        return parse_condition(text)

    def test_known_entailments(self):
        from repro.expr.satisfiability import implies

        for stronger, weaker in (
            ("x > 20", "x > 10"),
            ("x > 20 AND y < 5", "x > 10"),
            ("x > 20 AND y < 5", "y < 5"),
            ("x = 7", "x >= 7"),
            ("x > 5 AND x > 9", "x > 5"),
            ("x > 20", "x > 10 OR y < 0"),
            ("x > 20 OR x > 30", "x > 10"),
            ("tag = 'a'", "tag != 'b'"),
            ("x > 1 AND x < 0", "y > 100"),  # unsatisfiable antecedent
        ):
            assert implies(self.expr(stronger), self.expr(weaker)), (stronger, weaker)
            assert implies(self.expr(stronger), self.expr("TRUE"))

    def test_known_non_entailments(self):
        from repro.expr.satisfiability import implies

        for first, second in (
            ("x > 10", "x > 20"),
            ("x > 10", "y < 5"),
            ("x > 10 OR y < 5", "x > 10"),
            ("TRUE", "x > 0"),
            ("tag != 'b'", "tag = 'a'"),
        ):
            assert not implies(self.expr(first), self.expr(second)), (first, second)


class TestImpliesSoundnessProperty:
    """Hypothesis: whenever ``implies(A, B)`` answers True, every
    assignment satisfying A satisfies B.  (The converse need not hold —
    the check is incomplete — so only positive answers are audited.)

    Thresholds and assignment values are drawn from one landmark set,
    so the grid realizes every strictly-between / equal / outside
    relation the comparisons can distinguish.
    """

    LANDMARKS = (-10, 0, 5, 10, 15)

    def _strategies(self):
        from hypothesis import strategies as st
        from repro.expr.ast import (
            AndExpression,
            NotExpression,
            OrExpression,
            SimpleExpression,
            TrueExpression,
        )

        numeric_leaf = st.builds(
            SimpleExpression,
            st.sampled_from(("x", "y")),
            st.sampled_from(OPS),
            st.sampled_from(self.LANDMARKS),
        )
        string_leaf = st.builds(
            SimpleExpression,
            st.just("tag"),
            st.sampled_from((Operator.EQ, Operator.NE)),
            st.sampled_from(("a", "b")),
        )
        expressions = st.recursive(
            st.one_of(st.just(TrueExpression()), numeric_leaf, string_leaf),
            lambda children: st.one_of(
                st.lists(children, min_size=2, max_size=3).map(
                    lambda cs: AndExpression(tuple(cs))
                ),
                st.lists(children, min_size=2, max_size=3).map(
                    lambda cs: OrExpression(tuple(cs))
                ),
                children.map(NotExpression),
            ),
            max_leaves=6,
        )
        return expressions

    def _assignments(self):
        # Offsets ±0.5 land strictly between landmarks, so strict and
        # non-strict comparisons are distinguished by the sweep.
        values = sorted(
            set(self.LANDMARKS)
            | {v - 0.5 for v in self.LANDMARKS}
            | {v + 0.5 for v in self.LANDMARKS}
        )
        return [
            {"x": x, "y": y, "tag": tag}
            for x in values
            for y in (-10, 4.5, 15)
            for tag in ("a", "b")
        ]

    def test_positive_answers_are_entailments(self):
        from hypothesis import given, settings
        from repro.expr.evaluate import evaluate
        from repro.expr.satisfiability import implies

        assignments = self._assignments()
        expressions = self._strategies()
        checked = [0]

        @settings(max_examples=300, deadline=None)
        @given(first=expressions, second=expressions)
        def run(first, second):
            # Audit both orientations plus the reflexive case, which
            # must always be an entailment when DNF conversion fits.
            for a, b in ((first, second), (second, first), (first, first)):
                if not implies(a, b):
                    continue
                checked[0] += 1
                for assignment in assignments:
                    if evaluate(a, assignment):
                        assert evaluate(b, assignment), (a, b, assignment)

        run()
        # A soundness audit that never sees a positive answer audits
        # nothing: the strategy must actually produce entailments.
        assert checked[0] > 50
