"""Tests for condition evaluation against tuples and mappings."""

import pytest

from repro.errors import ExpressionTypeError, UnknownAttributeError
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.tuples import make_tuple


class TestAgainstMappings:
    def test_simple_true(self):
        assert evaluate(parse_condition("a > 5"), {"a": 6})

    def test_simple_false(self):
        assert not evaluate(parse_condition("a > 5"), {"a": 5})

    def test_and_or_not(self):
        cond = parse_condition("a > 5 AND (b < 2 OR NOT c = 0)")
        assert evaluate(cond, {"a": 6, "b": 5, "c": 1})
        assert not evaluate(cond, {"a": 6, "b": 5, "c": 0})

    def test_true_expression(self):
        assert evaluate(parse_condition("TRUE"), {})

    def test_case_insensitive_lookup(self):
        assert evaluate(parse_condition("RainRate > 5"), {"rainrate": 6})
        assert evaluate(parse_condition("rainrate > 5"), {"RainRate": 6})

    def test_string_equality(self):
        assert evaluate(parse_condition("city = 'sg'"), {"city": "sg"})
        assert not evaluate(parse_condition("city != 'sg'"), {"city": "sg"})

    def test_missing_attribute_raises(self):
        with pytest.raises(UnknownAttributeError):
            evaluate(parse_condition("zz > 5"), {"a": 1})

    def test_type_mismatch_raises(self):
        with pytest.raises(ExpressionTypeError):
            evaluate(parse_condition("a > 5"), {"a": "six"})
        with pytest.raises(ExpressionTypeError):
            evaluate(parse_condition("a = 'six'"), {"a": 6})


class TestAgainstStreamTuples:
    def test_weather_tuple(self):
        record = {
            "samplingtime": 0.0, "temperature": 30.0, "humidity": 70.0,
            "solarradiation": 100.0, "rainrate": 12.0, "windspeed": 3.0,
            "winddirection": 90, "barometer": 1010.0,
        }
        tup = make_tuple(WEATHER_SCHEMA, record)
        assert evaluate(parse_condition("rainrate > 5"), tup)
        assert not evaluate(parse_condition("windspeed >= 4"), tup)
