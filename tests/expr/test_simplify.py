"""Tests for filter-merge simplification (Section 3.1's example)."""

from repro.expr.ast import TrueExpression
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.expr.simplify import (
    conjoin,
    simplify_conjunction,
    simplify_merged_condition,
)


def literals(*texts):
    return [parse_condition(t) for t in texts]


class TestSimplifyConjunction:
    def test_paper_example(self):
        """C1 = x > v1, C2 = x > v2 → x > v2 iff v2 >= v1."""
        kept = simplify_conjunction(literals("x > 5", "x > 8"))
        assert [k.to_condition_string() for k in kept] == ["x > 8"]

    def test_keeps_both_directions(self):
        kept = simplify_conjunction(literals("x > 5", "x < 10"))
        assert len(kept) == 2

    def test_equal_literals_collapse(self):
        kept = simplify_conjunction(literals("x > 5", "x > 5"))
        assert len(kept) == 1

    def test_ge_vs_gt_same_value(self):
        kept = simplify_conjunction(literals("x >= 5", "x > 5"))
        assert [k.to_condition_string() for k in kept] == ["x > 5"]

    def test_point_absorbs_range(self):
        kept = simplify_conjunction(literals("x = 7", "x > 5"))
        assert [k.to_condition_string() for k in kept] == ["x = 7"]

    def test_different_attributes_untouched(self):
        kept = simplify_conjunction(literals("x > 5", "y > 8"))
        assert len(kept) == 2


class TestConjoin:
    def test_true_is_identity(self):
        expr = parse_condition("x > 5")
        assert conjoin(TrueExpression(), expr) is expr
        assert conjoin(expr, TrueExpression()) is expr

    def test_joins_two(self):
        merged = conjoin(parse_condition("x > 5"), parse_condition("y < 2"))
        assert merged.to_condition_string() == "x > 5 AND y < 2"


class TestSimplifyMergedCondition:
    def test_merged_paper_filters(self):
        """Policy rainrate > 5, user RainRate > 50 → rainrate > 50."""
        merged = simplify_merged_condition(
            parse_condition("rainrate > 5"), parse_condition("rainrate > 50")
        )
        assert merged.to_condition_string() == "rainrate > 50"

    def test_equivalence_preserved(self):
        policy = parse_condition("(a > 2 OR b < 5) AND c != 0")
        user = parse_condition("a > 4 AND c > 1")
        merged = simplify_merged_condition(policy, user)
        raw = conjoin(policy, user)
        for a in (0, 3, 5):
            for b in (0, 6):
                for c in (-1, 0, 2):
                    record = {"a": a, "b": b, "c": c}
                    assert evaluate(merged, record) == evaluate(raw, record)

    def test_true_sides(self):
        user = parse_condition("a > 4")
        assert simplify_merged_condition(TrueExpression(), user) is user
