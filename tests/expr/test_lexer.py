"""Tests for the condition tokenizer."""

import pytest

from repro.errors import ExpressionSyntaxError
from repro.expr.lexer import TokenType, tokenize


def token_list(text):
    return [t for t in tokenize(text) if t.type is not TokenType.END]


class TestBasicTokens:
    def test_simple_comparison(self):
        tokens = token_list("rainrate > 5")
        assert [t.type for t in tokens] == [
            TokenType.IDENT, TokenType.OP, TokenType.NUMBER,
        ]
        assert tokens[0].value == "rainrate"
        assert tokens[2].value == 5

    def test_all_two_char_operators(self):
        for op in ("<=", ">=", "!=", "<>", "=="):
            tokens = token_list(f"x {op} 1")
            assert tokens[1].type is TokenType.OP
            assert tokens[1].text == op

    def test_all_one_char_operators(self):
        for op in ("<", ">", "="):
            tokens = token_list(f"x {op} 1")
            assert tokens[1].text == op

    def test_float_literal(self):
        tokens = token_list("x > 3.75")
        assert tokens[2].value == 3.75
        assert isinstance(tokens[2].value, float)

    def test_integer_stays_int(self):
        tokens = token_list("x > 42")
        assert tokens[2].value == 42
        assert isinstance(tokens[2].value, int)

    def test_scientific_notation(self):
        tokens = token_list("x > 1.5e3")
        assert tokens[2].value == 1500.0

    def test_negative_number(self):
        tokens = token_list("x > -4")
        assert tokens[2].value == -4

    def test_leading_dot_number(self):
        tokens = token_list("x > .5")
        assert tokens[2].value == 0.5


class TestStringsAndKeywords:
    def test_string_literal(self):
        tokens = token_list("name = 'singapore'")
        assert tokens[2].type is TokenType.STRING
        assert tokens[2].value == "singapore"

    def test_string_with_escaped_quote(self):
        tokens = token_list("name = 'it''s'")
        assert tokens[2].value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(ExpressionSyntaxError):
            token_list("name = 'oops")

    def test_keywords_case_insensitive(self):
        for word, kind in (("AND", TokenType.AND), ("and", TokenType.AND),
                           ("Or", TokenType.OR), ("NOT", TokenType.NOT),
                           ("true", TokenType.TRUE)):
            tokens = token_list(word)
            assert tokens[0].type is kind

    def test_identifier_with_underscore_and_digits(self):
        tokens = token_list("wind_speed2 > 1")
        assert tokens[0].value == "wind_speed2"


class TestErrors:
    def test_unexpected_character(self):
        with pytest.raises(ExpressionSyntaxError) as excinfo:
            token_list("x @ 5")
        assert excinfo.value.position == 2

    def test_parens_tokenize(self):
        tokens = token_list("(x > 1)")
        assert tokens[0].type is TokenType.LPAREN
        assert tokens[-1].type is TokenType.RPAREN
