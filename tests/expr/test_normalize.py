"""Tests for NOT-elimination, postfix conversion and DNF (Section 3.5)."""

import pytest

from repro.errors import ExpressionError
from repro.expr.ast import Operator, SimpleExpression, TrueExpression
from repro.expr.evaluate import evaluate
from repro.expr.normalize import eliminate_not, to_dnf, to_postfix
from repro.expr.parser import parse_condition


def render_dnf(dnf):
    return [[s.to_condition_string() for s in conj] for conj in dnf]


class TestTable2Negations:
    """The paper's Table 2: NOT (x op v) → x op' v."""

    @pytest.mark.parametrize(
        "op,negated",
        [
            (Operator.GT, Operator.LE),
            (Operator.LT, Operator.GE),
            (Operator.GE, Operator.LT),
            (Operator.LE, Operator.GT),
            (Operator.EQ, Operator.NE),
            (Operator.NE, Operator.EQ),
        ],
    )
    def test_negation_table(self, op, negated):
        assert op.negated is negated

    def test_negation_is_involution(self):
        for op in Operator:
            assert op.negated.negated is op


class TestEliminateNot:
    def test_leaf_negation(self):
        expr = eliminate_not(parse_condition("NOT (a > 5)"))
        assert expr == SimpleExpression("a", Operator.LE, 5)

    def test_de_morgan_and(self):
        expr = eliminate_not(parse_condition("NOT (a > 5 AND b < 3)"))
        assert expr.to_condition_string() == "a <= 5 OR b >= 3"

    def test_de_morgan_or(self):
        expr = eliminate_not(parse_condition("NOT (a > 5 OR b < 3)"))
        assert expr.to_condition_string() == "a <= 5 AND b >= 3"

    def test_double_negation_cancels(self):
        expr = eliminate_not(parse_condition("NOT NOT (a > 5)"))
        assert expr == SimpleExpression("a", Operator.GT, 5)

    def test_nested_negations(self):
        expr = eliminate_not(parse_condition("NOT (a > 5 AND NOT (b < 3))"))
        assert expr.to_condition_string() == "a <= 5 OR b < 3"

    def test_preserves_truth_table(self):
        text = "NOT ((a > 2 OR b < 5) AND NOT (a != 7))"
        original = parse_condition(text)
        eliminated = eliminate_not(original)
        for a in (0, 2, 3, 7, 10):
            for b in (0, 5, 9):
                record = {"a": a, "b": b}
                assert evaluate(original, record) == evaluate(eliminated, record)


class TestPostfix:
    def test_simple_chain(self):
        postfix = to_postfix(parse_condition("a > 1 AND b > 2"))
        kinds = [t if isinstance(t, str) else t.to_condition_string() for t in postfix]
        assert kinds == ["a > 1", "b > 2", "AND"]

    def test_example4_shape(self):
        # ((A&B)|C)&(D&E) → A B & C | D E & &
        expr = parse_condition("(a>20 AND a<30 OR a=40) AND (a<10 AND b=20)")
        postfix = to_postfix(expr)
        markers = [t for t in postfix if isinstance(t, str)]
        assert markers == ["AND", "OR", "AND", "AND"]

    def test_rejects_not(self):
        with pytest.raises(ExpressionError):
            to_postfix(parse_condition("NOT a > 1"))


class TestDnf:
    def test_already_conjunction(self):
        dnf = to_dnf(parse_condition("a > 1 AND b < 2"))
        assert render_dnf(dnf) == [["a > 1", "b < 2"]]

    def test_distribution(self):
        dnf = to_dnf(parse_condition("(a > 1 OR b > 2) AND c = 3"))
        assert render_dnf(dnf) == [["a > 1", "c = 3"], ["b > 2", "c = 3"]]

    def test_paper_example4(self):
        """Example 4: P1 = (a>20 AND a<30) OR a=40, C2 = a<10 AND b=20."""
        expr = parse_condition(
            "((a>20 AND a<30) OR NOT(a != 40)) AND (NOT(a >= 10) AND b = 20)"
        )
        dnf = to_dnf(expr)
        assert render_dnf(dnf) == [
            ["a > 20", "a < 30", "a < 10", "b = 20"],
            ["a = 40", "a < 10", "b = 20"],
        ]

    def test_duplicate_literals_removed(self):
        dnf = to_dnf(parse_condition("a > 1 AND a > 1"))
        assert render_dnf(dnf) == [["a > 1"]]

    def test_duplicate_conjunctions_removed(self):
        dnf = to_dnf(parse_condition("(a > 1) OR (a > 1)"))
        assert render_dnf(dnf) == [["a > 1"]]

    def test_true_absorbs(self):
        dnf = to_dnf(parse_condition("TRUE OR a > 1"))
        assert dnf == [()]

    def test_true_is_and_identity(self):
        dnf = to_dnf(parse_condition("TRUE AND a > 1"))
        assert render_dnf(dnf) == [["a > 1"]]

    def test_dnf_preserves_truth_table(self):
        text = "(a > 2 OR NOT (b <= 5)) AND (NOT (a = 7) OR b > 1)"
        original = parse_condition(text)
        dnf = to_dnf(original)
        for a in (0, 2, 3, 7, 10):
            for b in (0, 1, 5, 9):
                record = {"a": a, "b": b}
                expected = evaluate(original, record)
                got = any(
                    all(evaluate(literal, record) for literal in conj)
                    for conj in dnf
                )
                assert got == expected, (a, b)
