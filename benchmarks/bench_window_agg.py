"""Window-aggregation benchmark — columnar incremental vs seed recompute.

The PR-3 tentpole moves window state to columnar per-attribute ring
buffers and replaces recompute-per-window with incremental aggregate
states (running sums, two-stacks min/max, reverse-Welford stdev).
This benchmark pins the win across overlap ratios size/step ∈
{1, 4, 16} on tuple windows (higher overlap = more recomputation
saved), plus a sliding time-window run on the pointer-eviction path,
against the seed row-oriented path (``StreamEngine.reference()``).

Results are emitted to ``BENCH_window_agg.json`` so the CI bench-smoke
job can archive them as an artifact.  The size/step=16 speedup
assertion is the PR's acceptance criterion (≥ 3x).
"""

import gc
import json
import math
import os
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

TUPLES = WeatherSource(seed=5).tuples(4_000)
WINDOW_SIZE = 64
OVERLAP_RATIOS = (1, 4, 16)  # size/step: 1 = tumbling, 16 = heavy overlap
AGGREGATIONS = (
    "temperature:avg",
    "windspeed:max",
    "rainrate:sum",
    "humidity:min",
)
#: Outputs with float drift between incremental and recomputed results.
DRIFTING_FIELDS = {"avgtemperature", "sumrainrate"}

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_window_agg.json"


def aggregate_graph(window_type, size, step):
    return QueryGraph("weather").append(
        AggregateOperator(
            WindowSpec(window_type, size, step),
            [AggregationSpec.parse(text) for text in AGGREGATIONS],
        )
    )


def timed_run(compiled, graph):
    """Engine throughput for one push_batch of the full stream; returns
    (best-of-3 seconds, outputs of the final run)."""
    best, outputs = None, None
    for _ in range(3):
        engine = StreamEngine() if compiled else StreamEngine.reference()
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        handle = engine.register_query(graph.fresh_copy())
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            engine.push_batch("weather", TUPLES)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
        outputs = engine.read(handle)
    return best, outputs


def assert_outputs_equivalent(columnar, reference):
    """Columnar and seed outputs must agree: exactly for min/max/count-
    style fields, to float tolerance where incremental eviction drifts."""
    assert len(columnar) == len(reference)
    for got, expected in zip(columnar, reference):
        for name, g, e in zip(
            got.schema.attribute_names, got.values, expected.values
        ):
            if name in DRIFTING_FIELDS:
                assert math.isclose(g, e, rel_tol=1e-9, abs_tol=1e-6), (name, g, e)
            else:
                assert g == e, (name, g, e)


def test_tuple_window_overlap_sweep(benchmark):
    """Columnar incremental vs seed recompute across overlap ratios."""

    def sweep():
        results = {}
        for ratio in OVERLAP_RATIOS:
            step = WINDOW_SIZE // ratio
            graph = aggregate_graph(WindowType.TUPLE, WINDOW_SIZE, step)
            seed_s, seed_out = timed_run(False, graph)
            columnar_s, columnar_out = timed_run(True, graph)
            assert_outputs_equivalent(columnar_out, seed_out)
            results[ratio] = {
                "size": WINDOW_SIZE,
                "step": step,
                "windows": len(columnar_out),
                "seed_s": seed_s,
                "columnar_s": columnar_s,
                "speedup": seed_s / columnar_s,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        f"Tuple-window aggregation — columnar incremental vs seed recompute "
        f"({len(TUPLES)} tuples, size {WINDOW_SIZE}, {len(AGGREGATIONS)} aggregations)"
    )
    for ratio, row in results.items():
        print(
            f"  size/step {ratio:>2d}: seed "
            f"{len(TUPLES) / row['seed_s']:>10.0f} t/s"
            f"   columnar {len(TUPLES) / row['columnar_s']:>10.0f} t/s"
            f"   ({row['speedup']:.1f}x)"
        )
    _merge_results({"tuple_window": results})
    # Acceptance criterion: ≥ 3x at size/step=16.  As in
    # bench_operator_eval.py, BENCH_SMOKE_RELAXED lowers the gate on
    # noisy shared runners while still catching a disabled fast path.
    floor = 1.5 if os.environ.get("BENCH_SMOKE_RELAXED") else 3.0
    assert results[16]["speedup"] >= floor


def test_time_window_pointer_eviction(benchmark):
    """Sliding time window (300 s size, 75 s step, 30 s sampling) on the
    monotonic pointer-eviction path vs the seed row path."""

    def compare():
        graph = aggregate_graph(WindowType.TIME, 300, 75)
        seed_s, seed_out = timed_run(False, graph)
        columnar_s, columnar_out = timed_run(True, graph)
        # The columnar time path recomputes from column slices, so
        # equality is exact, drift-prone aggregations included.
        assert [t.values for t in columnar_out] == [t.values for t in seed_out]
        return {
            "windows": len(columnar_out),
            "seed_s": seed_s,
            "columnar_s": columnar_s,
            "speedup": seed_s / columnar_s,
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_header("Time-window aggregation — pointer eviction vs seed row path")
    print(
        f"  seed {len(TUPLES) / results['seed_s']:>10.0f} t/s"
        f"   columnar {len(TUPLES) / results['columnar_s']:>10.0f} t/s"
        f"   ({results['speedup']:.1f}x, {results['windows']} windows)"
    )
    _merge_results({"time_window": results})


def _merge_results(update: dict) -> None:
    """Accumulate this module's sections into one JSON artifact."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            data = {}
    data.update(update)
    data["tuples"] = len(TUPLES)
    data["aggregations"] = list(AGGREGATIONS)
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
