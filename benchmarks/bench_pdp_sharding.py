"""PDP sharding benchmark — routed scale-out, scatter caching, workers.

Three sections, all landing in ``BENCH_pdp_sharding.json``:

**Makespan sweep (modeled).**  The PR 4 measurement, kept for
continuity: the request stream is routed into per-shard queues (routing
is one stable CRC32 hash — a stateless front-tier concern, excluded
from shard time), each shard's queue is timed separately on this
machine, and the aggregate throughput is ``requests / max(shard_time)``
— the wall clock of the slowest shard had the shards run in parallel,
i.e. a *model* that assumes one host per shard.

**Scatter caching (measured).**  A scatter-heavy workload — ≥50 % of
requests carry two resource-id values hashing to different shards, and
the stream revisits a zipf-skewed working set of distinct requests —
run through the PR 4 uncached scatter path (``scatter_cache_size=0``:
every spanning request re-gathers and re-merges) versus the PR 5
cached single-flight path.  Acceptance: ≥ 3x throughput cached vs
uncached at 4 shards (the CI smoke job relaxes to 2x).

**Worker pool (measured).**  The makespan model's assumption made real:
a :class:`~repro.xacml.sharding.ProcessShardPool` runs each shard's
indexed+cached PDP on its own ``multiprocessing`` worker and the
*actual wall clock* of pushing the whole request stream through
``evaluate_many`` is compared against one in-process PDP evaluating
the same stream.  Acceptance: ≥ 2x measured speedup at 4 shards (CI
smoke relaxes to 1.5x) — asserted only when the machine exposes ≥ 4
CPUs, because real parallel speedup cannot exist below that; the
numbers (and the CPU count) are recorded regardless, so a single-core
run still reports honest measurements instead of a model.

Workload: 1,200 literal-target policies over 400 resource streams and
300 subjects plus 24 wildcard-resource policies (replicated to every
shard, the over-approximation tax), and 4,000 *distinct* routed
requests so the decision caches cannot mask evaluation cost.  A
500-request sample is asserted decision-identical between every engine
pair before anything is timed.
"""

import gc
import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.xacml.attributes import RESOURCE_ID, Attribute, AttributeCategory, AttributeValue
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import (
    ProcessShardPool,
    ShardedPDP,
    ShardedPolicyStore,
    shard_of,
)
from repro.xacml.store import PolicyStore

N_POLICIES = 1_200
N_WILDCARDS = 24
N_RESOURCES = 400
N_SUBJECTS = 300
N_REQUESTS = 4_000
SHARD_COUNTS = (1, 2, 4, 8)

#: Scatter-heavy workload: an ACL-shaped population (per-resource
#: policies whose *rules* discriminate subjects, so every request
#: touching a resource gathers all of its policies as candidates) and a
#: multi-resource request stream — the dashboard shape that motivates
#: scatter caching.
N_SCATTER_STREAM = 4_000
N_SCATTER_DISTINCT = 600
SCATTER_SHARE = 0.5
SCATTER_SHARDS = 4
N_SCATTER_RESOURCES = 120
POLICIES_PER_RESOURCE = 8
N_SCATTER_SUBJECTS = 40

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_pdp_sharding.json"


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def build_policies(seed=2012):
    rng = random.Random(seed)
    policies = []
    for i in range(N_POLICIES):
        policies.append(
            Policy(
                f"policy:{i}",
                target=Target.for_ids(
                    subject=f"user{rng.randrange(N_SUBJECTS)}",
                    resource=f"stream{rng.randrange(N_RESOURCES)}",
                ),
                rules=[
                    Rule(
                        f"policy:{i}:r",
                        Effect.PERMIT if rng.random() < 0.8 else Effect.DENY,
                    )
                ],
            )
        )
    for i in range(N_WILDCARDS):
        policies.append(
            Policy(
                f"wildcard:{i}",
                target=Target.for_ids(subject=f"user{rng.randrange(N_SUBJECTS)}"),
                rules=[Rule(f"wildcard:{i}:r", Effect.PERMIT)],
            )
        )
    return policies


def build_requests(seed=7):
    rng = random.Random(seed)
    pairs = rng.sample(range(N_SUBJECTS * N_RESOURCES), N_REQUESTS)
    return [
        Request.simple(f"user{pair % N_SUBJECTS}", f"stream{pair // N_SUBJECTS}")
        for pair in pairs
    ]


def build_scatter_policies(seed=31):
    """ACL-shaped policies: per-resource targets, per-subject rules.

    The policy *target* names only the resource, so the index (and the
    shard gather) returns every policy of every requested resource as a
    candidate; the rule-level subject targets are only resolved inside
    ``decide`` — the uncached scatter path pays that merge-and-combine
    work on every spanning request, which is exactly what the decision
    cache amortises.
    """
    rng = random.Random(seed)
    policies = []
    for r in range(N_SCATTER_RESOURCES):
        for i in range(POLICIES_PER_RESOURCE):
            subject = f"user{rng.randrange(N_SCATTER_SUBJECTS)}"
            effect = Effect.PERMIT if rng.random() < 0.85 else Effect.DENY
            policies.append(
                Policy(
                    f"acl:{r}:{i}",
                    target=Target.for_ids(resource=f"stream{r}"),
                    rules=[
                        Rule(
                            f"acl:{r}:{i}:r",
                            effect,
                            target=Target.for_ids(subject=subject),
                        )
                    ],
                )
            )
    return policies


def build_scatter_stream(seed=5, n_shards=SCATTER_SHARDS):
    """A zipf-skewed stream whose working set is ≥50 % shard-spanning.

    Spanning requests carry two resource-id values chosen to hash to
    *different* shards, so they genuinely take the scatter path.
    """
    rng = random.Random(seed)
    distinct = []
    spanning = 0
    while len(distinct) < N_SCATTER_DISTINCT:
        subject = f"user{rng.randrange(N_SCATTER_SUBJECTS)}"
        first = f"stream{rng.randrange(N_SCATTER_RESOURCES)}"
        request = Request.simple(subject, first)
        if len(distinct) < N_SCATTER_DISTINCT * SCATTER_SHARE:
            second = f"stream{rng.randrange(N_SCATTER_RESOURCES)}"
            while shard_of(second, n_shards) == shard_of(first, n_shards):
                second = f"stream{rng.randrange(N_SCATTER_RESOURCES)}"
            request.add(
                Attribute(
                    AttributeCategory.RESOURCE,
                    RESOURCE_ID,
                    AttributeValue.string(second),
                )
            )
            spanning += 1
        distinct.append(request)
    # Zipf-ish revisit pattern over the working set (rank ~ 1/k).
    weights = [1.0 / (rank + 1) for rank in range(len(distinct))]
    stream = rng.choices(distinct, weights=weights, k=N_SCATTER_STREAM)
    return stream, spanning / len(distinct)


def build_pool_requests(seed=17):
    """Distinct routed requests over the ACL population.

    All unique (subject, resource) pairs, so neither side's decision
    cache can mask evaluation cost — the comparison isolates parallel
    evaluation against serial evaluation of identical work.
    """
    rng = random.Random(seed)
    pairs = rng.sample(
        range(N_SCATTER_SUBJECTS * N_SCATTER_RESOURCES), N_REQUESTS
    )
    return [
        Request.simple(
            f"user{pair % N_SCATTER_SUBJECTS}",
            f"stream{pair // N_SCATTER_SUBJECTS}",
        )
        for pair in pairs
    ]


def timed(fn):
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started
    finally:
        gc.enable()


def best_of(n, make_fn):
    """Best-of-n over freshly built closures (cold caches every round)."""
    return min(timed(make_fn()) for _ in range(n))


def single_instance_seconds(policies, requests):
    def make():
        store = PolicyStore()
        for policy in policies:
            store.load(policy)
        pdp = PolicyDecisionPoint(store)
        return lambda: [pdp.evaluate(request) for request in requests]

    return best_of(3, make)


def sharded_makespan_seconds(policies, requests, n_shards):
    """Per-shard queue times under the makespan model; returns
    (makespan, per-shard queue lengths)."""
    store = ShardedPolicyStore(n_shards)
    for policy in policies:
        store.load(policy)
    sharded = ShardedPDP(store)
    queues = [[] for _ in range(n_shards)]
    for request in requests:
        shard_ids = store.shards_for_request(request)
        assert len(shard_ids) == 1  # single-resource requests always route
        queues[shard_ids[0]].append(request)

    shard_seconds = []
    for shard_id, queue in enumerate(queues):
        pdp = sharded.shard_pdps[shard_id]
        best = None
        for _ in range(3):
            pdp.flush_cache()
            elapsed = timed(lambda: [pdp.evaluate(request) for request in queue])
            best = elapsed if best is None else min(best, elapsed)
        shard_seconds.append(best)
    return max(shard_seconds), [len(queue) for queue in queues]


def scatter_path_seconds(policies, stream, cached):
    """Wall clock of the scatter-heavy stream through a fresh engine."""
    def make():
        store = ShardedPolicyStore(SCATTER_SHARDS)
        for policy in policies:
            store.load(policy)
        sharded = ShardedPDP(
            store, scatter_cache_size=None if cached else 0
        )
        return lambda: [sharded.evaluate(request) for request in stream]

    return best_of(3, make)


def worker_pool_seconds(policies, requests, n_shards):
    """Measured wall clock of the full stream through a live pool."""
    store = ShardedPolicyStore(n_shards)
    for policy in policies:
        store.load(policy)
    with ProcessShardPool(store, batch_size=256) as pool:
        best = None
        for _ in range(3):
            pool.flush_caches()
            elapsed = timed(lambda: pool.evaluate_many(requests))
            best = elapsed if best is None else min(best, elapsed)
    return best


def assert_equivalent_sample(policies, requests, n_shards, sample=500):
    single_store = PolicyStore()
    sharded_store = ShardedPolicyStore(n_shards)
    for policy in policies:
        single_store.load(policy)
        sharded_store.load(policy)
    single = PolicyDecisionPoint(single_store)
    sharded = ShardedPDP(sharded_store)
    for request in requests[:sample]:
        expected = single.evaluate(request)
        actual = sharded.evaluate(request)
        assert actual.decision is expected.decision
        assert actual.policy_id == expected.policy_id


def assert_pool_sample(policies, requests, n_shards, sample=500):
    single_store = PolicyStore()
    sharded_store = ShardedPolicyStore(n_shards)
    for policy in policies:
        single_store.load(policy)
        sharded_store.load(policy)
    single = PolicyDecisionPoint(single_store)
    with ProcessShardPool(sharded_store) as pool:
        got = pool.evaluate_many(requests[:sample])
    for request, actual in zip(requests[:sample], got):
        expected = single.evaluate(request)
        assert actual.decision is expected.decision
        assert actual.policy_id == expected.policy_id


def test_sharded_vs_single_instance_throughput(benchmark):
    relaxed = bool(os.environ.get("BENCH_SMOKE_RELAXED"))
    cpus = cpu_count()
    policies = build_policies()
    requests = build_requests()
    scatter_policies = build_scatter_policies()
    scatter_stream, spanning_share = build_scatter_stream()
    pool_requests = build_pool_requests()
    assert spanning_share >= 0.5
    assert_equivalent_sample(policies, requests, 4)
    assert_equivalent_sample(scatter_policies, scatter_stream, SCATTER_SHARDS)
    assert_pool_sample(scatter_policies, pool_requests, 4)

    def sweep():
        results = {}
        baseline = single_instance_seconds(policies, requests)
        results["single"] = {
            "seconds": baseline,
            "requests": N_REQUESTS,
            "throughput_rps": N_REQUESTS / baseline,
        }
        for n_shards in SHARD_COUNTS:
            makespan, queue_lengths = sharded_makespan_seconds(
                policies, requests, n_shards
            )
            results[f"shards_{n_shards}"] = {
                "model": "makespan",
                "makespan_seconds": makespan,
                "queue_lengths": queue_lengths,
                "aggregate_throughput_rps": N_REQUESTS / makespan,
                "speedup_vs_single": baseline / makespan,
            }
        uncached = scatter_path_seconds(scatter_policies, scatter_stream, cached=False)
        cached = scatter_path_seconds(scatter_policies, scatter_stream, cached=True)
        results["scatter_4"] = {
            "model": "measured",
            "policies": len(scatter_policies),
            "stream": N_SCATTER_STREAM,
            "distinct_requests": N_SCATTER_DISTINCT,
            "spanning_share": spanning_share,
            "uncached_seconds": uncached,
            "cached_seconds": cached,
            "uncached_throughput_rps": N_SCATTER_STREAM / uncached,
            "cached_throughput_rps": N_SCATTER_STREAM / cached,
            "speedup_vs_uncached": uncached / cached,
        }
        # Worker pool: measured on the evaluation-heavy ACL population
        # (≈100 µs/request), the regime where shipping work to another
        # process wins; the queue/pickle overhead (≈15 µs/request) is a
        # fixed tax the serial baseline does not pay, so light workloads
        # belong in-process — docs/performance.md quantifies the floor.
        acl_baseline = single_instance_seconds(scatter_policies, pool_requests)
        results["single_acl"] = {
            "seconds": acl_baseline,
            "requests": len(pool_requests),
            "throughput_rps": len(pool_requests) / acl_baseline,
        }
        for n_shards in (2, 4, 8):
            pool_seconds = worker_pool_seconds(
                scatter_policies, pool_requests, n_shards
            )
            results[f"worker_pool_{n_shards}"] = {
                "model": "measured",
                "cpus": cpus,
                "seconds": pool_seconds,
                "throughput_rps": len(pool_requests) / pool_seconds,
                "speedup_vs_single": acl_baseline / pool_seconds,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        f"PDP sharding — {N_POLICIES + N_WILDCARDS} policies, "
        f"{N_REQUESTS} distinct requests, {cpus} cpu(s)"
    )
    row = results["single"]
    print(f"  single          : {row['throughput_rps']:>10.0f} req/s")
    for n_shards in SHARD_COUNTS:
        row = results[f"shards_{n_shards}"]
        balance = max(row["queue_lengths"]) / (N_REQUESTS / n_shards)
        print(
            f"  {n_shards} shard(s), model: {row['aggregate_throughput_rps']:>10.0f} req/s"
            f"   ({row['speedup_vs_single']:.1f}x, "
            f"hottest shard {balance:.2f}x of even)"
        )
    row = results["scatter_4"]
    print(
        f"  scatter uncached: {row['uncached_throughput_rps']:>10.0f} req/s"
        f"   (spanning share {row['spanning_share']:.0%})"
    )
    print(
        f"  scatter cached  : {row['cached_throughput_rps']:>10.0f} req/s"
        f"   ({row['speedup_vs_uncached']:.1f}x vs uncached)"
    )
    row = results["single_acl"]
    print(f"  single, ACL     : {row['throughput_rps']:>10.0f} req/s")
    for n_shards in (2, 4, 8):
        row = results[f"worker_pool_{n_shards}"]
        print(
            f"  pool, {n_shards} worker(s): {row['throughput_rps']:>10.0f} req/s"
            f"   ({row['speedup_vs_single']:.1f}x measured)"
        )
    _write_results(results, cpus)

    # Acceptance gates.  The CI smoke job relaxes each (single-shot
    # timings on shared runners) but still fails outright if the fast
    # path stops being fast; equivalence assertions above stay strict.
    makespan_floor = 1.5 if relaxed else 2.0
    assert results["shards_4"]["speedup_vs_single"] >= makespan_floor
    scatter_floor = 2.0 if relaxed else 3.0
    assert results["scatter_4"]["speedup_vs_uncached"] >= scatter_floor
    # Real parallel speedup needs real CPUs: the pool gate applies only
    # where ≥4 cores exist (CI runners do; a 1-core container cannot
    # physically exceed 1x and records its measurements gate-free).
    if cpus >= 4:
        pool_floor = 1.5 if relaxed else 2.0
        assert results["worker_pool_4"]["speedup_vs_single"] >= pool_floor


def _write_results(results: dict, cpus: int) -> None:
    data = {
        "workload": {
            "policies": N_POLICIES,
            "wildcard_policies": N_WILDCARDS,
            "resources": N_RESOURCES,
            "subjects": N_SUBJECTS,
            "requests": N_REQUESTS,
            "scatter_stream": N_SCATTER_STREAM,
            "cpus": cpus,
        },
        **results,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
