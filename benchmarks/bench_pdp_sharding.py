"""PDP sharding benchmark — aggregate throughput vs the single instance.

The PR 4 tentpole hash-partitions the policy store across N shards and
routes each request to the owning shard's PDP.  Sharding buys nothing on
one core — it buys *horizontal* scale: each shard is an independent
XACML+ instance that can run on its own host.  The benchmark therefore
measures the standard makespan model for simulated distributed scale-out:
the request stream is routed into per-shard queues (routing is one
stable CRC32 hash — a stateless front-tier concern, excluded from shard
time), each shard's queue is timed separately on this machine, and the
aggregate throughput is ``requests / max(shard_time)`` — the wall clock
of the slowest shard had the shards run in parallel.  The single-PDP
baseline runs the identical request stream through one indexed+cached
``PolicyDecisionPoint`` (the same fast-path configuration, so the
comparison isolates partitioning, not caching or indexing).

Workload: 1,200 literal-target policies over 400 resource streams and
300 subjects plus 24 wildcard-resource policies (replicated to every
shard, the over-approximation tax), and 4,000 *distinct* requests so the
decision caches cannot mask evaluation cost.

Acceptance criterion (the PR gate): ≥ 2x aggregate throughput at 4
shards vs the single instance.  Results land in
``BENCH_pdp_sharding.json`` for the CI artifact/trajectory steps, and a
500-request sample is asserted decision-identical between the sharded
and single engines before anything is timed.
"""

import gc
import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.request import Request
from repro.xacml.response import Effect
from repro.xacml.sharding import ShardedPDP, ShardedPolicyStore
from repro.xacml.store import PolicyStore

N_POLICIES = 1_200
N_WILDCARDS = 24
N_RESOURCES = 400
N_SUBJECTS = 300
N_REQUESTS = 4_000
SHARD_COUNTS = (1, 2, 4, 8)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_pdp_sharding.json"


def build_policies(seed=2012):
    rng = random.Random(seed)
    policies = []
    for i in range(N_POLICIES):
        policies.append(
            Policy(
                f"policy:{i}",
                target=Target.for_ids(
                    subject=f"user{rng.randrange(N_SUBJECTS)}",
                    resource=f"stream{rng.randrange(N_RESOURCES)}",
                ),
                rules=[
                    Rule(
                        f"policy:{i}:r",
                        Effect.PERMIT if rng.random() < 0.8 else Effect.DENY,
                    )
                ],
            )
        )
    for i in range(N_WILDCARDS):
        policies.append(
            Policy(
                f"wildcard:{i}",
                target=Target.for_ids(subject=f"user{rng.randrange(N_SUBJECTS)}"),
                rules=[Rule(f"wildcard:{i}:r", Effect.PERMIT)],
            )
        )
    return policies


def build_requests(seed=7):
    rng = random.Random(seed)
    pairs = rng.sample(range(N_SUBJECTS * N_RESOURCES), N_REQUESTS)
    return [
        Request.simple(f"user{pair % N_SUBJECTS}", f"stream{pair // N_SUBJECTS}")
        for pair in pairs
    ]


def timed(fn):
    gc.collect()
    gc.disable()
    try:
        started = time.perf_counter()
        fn()
        return time.perf_counter() - started
    finally:
        gc.enable()


def best_of(n, make_fn):
    """Best-of-n over freshly built closures (cold caches every round)."""
    return min(timed(make_fn()) for _ in range(n))


def single_instance_seconds(policies, requests):
    def make():
        store = PolicyStore()
        for policy in policies:
            store.load(policy)
        pdp = PolicyDecisionPoint(store)
        return lambda: [pdp.evaluate(request) for request in requests]

    return best_of(3, make)


def sharded_makespan_seconds(policies, requests, n_shards):
    """Per-shard queue times under the makespan model; returns
    (makespan, per-shard queue lengths)."""
    store = ShardedPolicyStore(n_shards)
    for policy in policies:
        store.load(policy)
    sharded = ShardedPDP(store)
    queues = [[] for _ in range(n_shards)]
    for request in requests:
        shard_ids = store.shards_for_request(request)
        assert len(shard_ids) == 1  # single-resource requests always route
        queues[shard_ids[0]].append(request)

    shard_seconds = []
    for shard_id, queue in enumerate(queues):
        pdp = sharded.shard_pdps[shard_id]
        best = None
        for _ in range(3):
            pdp.flush_cache()
            elapsed = timed(lambda: [pdp.evaluate(request) for request in queue])
            best = elapsed if best is None else min(best, elapsed)
        shard_seconds.append(best)
    return max(shard_seconds), [len(queue) for queue in queues]


def assert_equivalent_sample(policies, requests, n_shards, sample=500):
    single_store = PolicyStore()
    sharded_store = ShardedPolicyStore(n_shards)
    for policy in policies:
        single_store.load(policy)
        sharded_store.load(policy)
    single = PolicyDecisionPoint(single_store)
    sharded = ShardedPDP(sharded_store)
    for request in requests[:sample]:
        expected = single.evaluate(request)
        actual = sharded.evaluate(request)
        assert actual.decision is expected.decision
        assert actual.policy_id == expected.policy_id


def test_sharded_vs_single_instance_throughput(benchmark):
    policies = build_policies()
    requests = build_requests()
    assert_equivalent_sample(policies, requests, 4)

    def sweep():
        results = {}
        baseline = single_instance_seconds(policies, requests)
        results["single"] = {
            "seconds": baseline,
            "requests": N_REQUESTS,
            "throughput_rps": N_REQUESTS / baseline,
        }
        for n_shards in SHARD_COUNTS:
            makespan, queue_lengths = sharded_makespan_seconds(
                policies, requests, n_shards
            )
            results[f"shards_{n_shards}"] = {
                "makespan_seconds": makespan,
                "queue_lengths": queue_lengths,
                "aggregate_throughput_rps": N_REQUESTS / makespan,
                "speedup_vs_single": baseline / makespan,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        f"PDP sharding — {N_POLICIES + N_WILDCARDS} policies, "
        f"{N_REQUESTS} distinct requests (makespan model)"
    )
    row = results["single"]
    print(f"  single     : {row['throughput_rps']:>10.0f} req/s")
    for n_shards in SHARD_COUNTS:
        row = results[f"shards_{n_shards}"]
        balance = max(row["queue_lengths"]) / (N_REQUESTS / n_shards)
        print(
            f"  {n_shards} shard(s) : {row['aggregate_throughput_rps']:>10.0f} req/s"
            f"   ({row['speedup_vs_single']:.1f}x, "
            f"hottest shard {balance:.2f}x of even)"
        )
    _write_results(results)
    # Acceptance criterion: ≥ 2x aggregate throughput at 4 shards.  The
    # CI smoke job relaxes to 1.5x (single-shot timings on shared
    # runners), which still fails outright if partitioning or routing
    # stops narrowing per-shard work.
    floor = 1.5 if os.environ.get("BENCH_SMOKE_RELAXED") else 2.0
    assert results["shards_4"]["speedup_vs_single"] >= floor


def _write_results(results: dict) -> None:
    data = {
        "workload": {
            "policies": N_POLICIES,
            "wildcard_policies": N_WILDCARDS,
            "resources": N_RESOURCES,
            "subjects": N_SUBJECTS,
            "requests": N_REQUESTS,
        },
        **results,
    }
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
