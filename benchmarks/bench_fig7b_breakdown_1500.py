"""Figure 7(b) — detailed processing time of 1500 AC requests (1000 policies).

Scalability counterpart of Figure 7(a): despite 20× more loaded policies
and 15× more requests, PDP and query-graph manipulation stay below
0.01 s and "the response time for eXACML+ to process AC requests is
consistent for over 99% of the requests".
"""

from benchmarks.conftest import make_runner, print_header
from repro.workload.report import breakdown_summary, breakdown_table


def run_breakdown_1500():
    runner, generator = make_runner(n_requests=1500, n_policies=1000)
    items = generator.generate()
    runner.load_policies(items)
    traces = runner.run_unique(items)
    return runner, traces


def test_fig7b_breakdown_1500_requests(benchmark):
    runner, traces = benchmark.pedantic(run_breakdown_1500, rounds=1, iterations=1)
    assert len(traces) == 1500

    print_header(
        "Figure 7(b) — processing time breakdown, 1500 requests / 1000 policies"
    )
    print(breakdown_table(traces, sample_every=150))
    stats = breakdown_summary(traces)
    print()
    print(f"  PDP mean           : {stats['pdp'].mean * 1000:.2f} ms")
    print(f"  PDP p99            : "
          f"{sorted(t.pdp for t in traces)[int(0.99 * len(traces))] * 1000:.2f} ms")
    print(f"  QueryGraph mean    : {stats['query_graph'].mean * 1000:.2f} ms")
    print(f"  PDP+graph < 10 ms  : {stats['pdp_graph_under_10ms']:.2f} of requests")
    print(f"  DSMS submit share  : {stats['submit_share']:.2f} (paper: ~1/3)")
    print(f"  consistent fraction: {stats['consistent_fraction']:.4f} "
          f"(paper: > 0.99 within a small band)")

    assert stats["pdp"].mean < 0.01
    assert stats["query_graph"].mean < 0.01
    assert stats["pdp_graph_under_10ms"] > 0.95
    assert stats["consistent_fraction"] > 0.99
    # Scalability: PDP time with 1000 policies must stay the same order
    # of magnitude as the request pipeline — no blow-up with store size.
    assert stats["pdp"].p99 < 0.02
