"""Ablation A6 — deployment profiles (the paper's planned EC2/Azure move).

Section 6: "Our immediate plans are to migrate the framework to
commercial Cloud environments such as Amazon EC2 and Microsoft's Azure."
This bench replays the unique request sequence under three latency
profiles — the paper's intranet testbed, an EC2-like region and an
Azure-like region — and reports how the response-time composition shifts
(cloud deployments spend *more* of the budget on the client's WAN hop
and less inside the datacentre).
"""

from benchmarks.conftest import print_header
from repro.framework.network import SimulatedNetwork
from repro.framework.profiles import get_profile
from repro.workload.generator import WorkloadGenerator
from repro.workload.report import breakdown_summary
from repro.workload.runner import ExperimentRunner


def run_profile(name, n_requests=300, n_policies=200, seed=7):
    generator = WorkloadGenerator(seed=seed)
    generator.parameters = generator.parameters._replace(
        n_requests=n_requests, n_policies=n_policies
    )
    runner = ExperimentRunner(seed=seed, generator=generator)
    runner.network = SimulatedNetwork(get_profile(name, seed=seed))
    # Rebind every entity to the profiled network.
    runner.server.network = runner.network
    runner.proxy.network = runner.network
    runner.client.network = runner.network
    runner.direct.network = runner.network
    items = generator.generate()
    runner.load_policies(items)
    traces = runner.run_unique(items)
    return breakdown_summary(traces)


def test_deployment_profiles(benchmark):
    results = {}

    def sweep():
        for name in ("intranet", "ec2", "azure"):
            results[name] = run_profile(name)

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    print_header("Ablation A6 — eXACML+ under deployment profiles")
    print(f"  {'profile':>9s} {'mean total':>11s} {'network share':>14s} "
          f"{'submit share':>13s}")
    for name, stats in results.items():
        print(
            f"  {name:>9s} {stats['total'].mean:>10.3f}s "
            f"{stats['network_share']:>14.2f} {stats['submit_share']:>13.2f}"
        )

    # Cloud deployments: faster intra-DC submission, heavier WAN share.
    assert results["ec2"]["submit_share"] < results["intranet"]["submit_share"]
    assert results["ec2"]["network_share"] > results["intranet"]["network_share"]
    # All profiles keep the access-control computation under 10 ms.
    for stats in results.values():
        assert stats["pdp"].mean < 0.01
        assert stats["query_graph"].mean < 0.01
