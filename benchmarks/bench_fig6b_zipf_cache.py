"""Figure 6(b) — CDF under a Zipf-distributed sequence, cache on/off.

The request sequence follows Zipf(α=0.223) over the 300 most popular
unique requests (Table 3).  Paper shape: eXACML+ never beats the direct
query system, but proxy caching yields "over 100% improvement over
non-cached requests for nearly 40% of the ... requests and at least 10%
improvement for the rest".
"""

from benchmarks.conftest import make_runner, print_header
from repro.workload.report import cdf_table, improvement_histogram, summary_table


def run_zipf_experiment():
    # Three independent deployments replaying the same Zipf sequence:
    # direct baseline, cache off, cache on.
    runner_off, generator_off = make_runner(cache_enabled=False)
    items_off = generator_off.generate()
    runner_off.load_policies(items_off)
    runner_off.run_direct(items_off)
    off_traces = runner_off.run_zipf(items_off, system_label="exacml+ cache off")

    runner_on, generator_on = make_runner(cache_enabled=True, cache_capacity=120)
    items_on = generator_on.generate()
    runner_on.load_policies(items_on)
    on_traces = runner_on.run_zipf(items_on, system_label="exacml+ cache on")
    return runner_off, runner_on, off_traces, on_traces


def test_fig6b_zipf_cache(benchmark):
    runner_off, runner_on, off_traces, on_traces = benchmark.pedantic(
        run_zipf_experiment, rounds=1, iterations=1
    )

    print_header("Figure 6(b) — CDF under Zipf sequence (α=0.223, maxRank=300)")
    # Merge both runs' metrics for a single CDF table.
    runner_off.metrics.extend(on_traces)
    print(cdf_table(
        runner_off.metrics,
        ["direct", "exacml+ cache off", "exacml+ cache on"],
    ))
    print()
    print(summary_table(
        runner_off.metrics,
        ["direct", "exacml+ cache off", "exacml+ cache on"],
    ))

    hit_rate = runner_on.proxy.hit_rate
    histogram = improvement_histogram(on_traces, off_traces)
    print()
    print(f"  proxy cache hit rate            : {hit_rate:.2f}")
    print(f"  requests with >100% improvement : "
          f"{histogram['fraction_over_100pct']:.2f} (paper: ~0.40)")
    print(f"  requests with >10%  improvement : "
          f"{histogram['fraction_over_10pct']:.2f}")
    print(f"  mean improvement                : "
          f"{histogram['mean_improvement']:.2f}")

    direct = runner_off.metrics.summary("direct")
    cached = runner_off.metrics.summary("exacml+ cache on")
    uncached = runner_off.metrics.summary("exacml+ cache off")
    # Shape assertions from the paper's discussion.  The typical (median)
    # request is still slower through eXACML+ than through direct query —
    # cache hits cut the tail, they do not beat the baseline per request.
    assert direct.p50 < cached.p50, "eXACML+ does not outperform direct query"
    assert cached.mean < uncached.mean, "caching must help"
    assert histogram["fraction_over_100pct"] > 0.25
    assert hit_rate > 0.25
