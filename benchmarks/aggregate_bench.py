"""Aggregate every ``BENCH_*.json`` artifact into one trajectory summary.

Each performance PR leaves a machine-readable benchmark artifact at the
repo root (``BENCH_operator_eval.json``, ``BENCH_window_agg.json``,
``BENCH_pdp_sharding.json``, ...).  Individually they answer "how fast
is this subsystem"; this script folds them into a single
``BENCH_trajectory.json`` — the performance trajectory of the repo —
so CI uploads one artifact that answers "what has the project gained,
PR over PR" and regressions stand out as a dropped headline number.

Headline extraction is structural, not per-benchmark: every numeric
value under a key containing ``speedup`` (at any nesting depth) is
collected with its dotted path, so future benchmarks join the
trajectory by emitting the same convention instead of editing this
script.

Usage: ``python benchmarks/aggregate_bench.py [--check]``
(``--check`` exits non-zero when no artifacts are found — the CI step
uses it so an accidentally-deleted artifact fails loudly).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
OUTPUT = ROOT / "BENCH_trajectory.json"


def find_speedups(node, path=""):
    """Yield (dotted_path, value) for every numeric *speedup* key."""
    if isinstance(node, dict):
        for key, value in sorted(node.items()):
            child = f"{path}.{key}" if path else str(key)
            if "speedup" in str(key).lower() and isinstance(value, (int, float)):
                yield child, float(value)
            else:
                yield from find_speedups(value, child)
    elif isinstance(node, list):
        for index, value in enumerate(node):
            yield from find_speedups(value, f"{path}[{index}]")


def aggregate() -> dict:
    benchmarks = {}
    for artifact in sorted(ROOT.glob("BENCH_*.json")):
        if artifact == OUTPUT:
            continue
        name = artifact.stem[len("BENCH_"):]
        try:
            benchmarks[name] = json.loads(artifact.read_text())
        except ValueError as error:
            print(f"warning: skipping unreadable {artifact.name}: {error}",
                  file=sys.stderr)
    headline = {
        name: dict(find_speedups(data)) for name, data in benchmarks.items()
    }
    return {
        "artifacts": len(benchmarks),
        "headline_speedups": {k: v for k, v in headline.items() if v},
        "benchmarks": benchmarks,
    }


def main(argv) -> int:
    trajectory = aggregate()
    OUTPUT.write_text(json.dumps(trajectory, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUTPUT.name}: {trajectory['artifacts']} artifact(s)")
    for name, speedups in sorted(trajectory["headline_speedups"].items()):
        for path, value in sorted(speedups.items()):
            print(f"  {name:>16s}  {path:<40s} {value:6.1f}x")
    if "--check" in argv and trajectory["artifacts"] == 0:
        print("error: no BENCH_*.json artifacts found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
