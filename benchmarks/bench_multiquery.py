"""Multi-query fan-out benchmark — shared execution plan vs per-query.

The shared-plan tentpole merges identical operator-chain prefixes
across registered queries into one DAG node each, so a pushed batch is
filtered/windowed once per *distinct* prefix instead of once per
query: per-query ingest cost goes sublinear in the registered-query
count.  This benchmark pins that win on the workload the optimization
targets: fan-outs of 10 and 100 queries built from 10 query *families*
— each family one filter + one window aggregation shared by all its
members, diverging only at a cheap projection tail (~80% of each
chain's operators are family-shared).  Some family filters subsume
others (``temperature > 12`` implies ``temperature > 4``), so the
subsumption feed path is on the measured path too.

Both sides run the compiled engine; the baseline
(``StreamEngine(shared=False)``) instantiates one private pipeline per
query — the pre-plan execution model.  Both sides' outputs are
asserted identical (same operators, same arithmetic, same batching —
sharing must be output-invisible), and every run ends by withdrawing
all queries and asserting the plan released every DAG node.

Results are emitted to ``BENCH_multiquery.json`` for the CI bench-smoke
artifact and the BENCH_trajectory.json roll-up.  The fan-out-100
speedup assertion is the PR's acceptance criterion (≥ 3x).
"""

import gc
import json
import os
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

TUPLES = WeatherSource(seed=8).tuples(6_000)
FANOUTS = (10, 100)
N_FAMILIES = 10

#: One filter condition per family.  The temperature thresholds form an
#: implication ladder (every tighter filter is subsumed by the loosest),
#: the rest are independent attributes — so the plan exercises both
#: exact prefix merging and subsumption feeds.
FAMILY_CONDITIONS = (
    "temperature > 4",
    "temperature > 8",
    "temperature > 12",
    "humidity > 30",
    "humidity > 60",
    "windspeed > 3",
    "windspeed > 9",
    "rainrate >= 0",
    "rainrate > 1",
    "temperature > 8 AND humidity > 30",
)

AGGREGATIONS = (
    "temperature:avg",
    "windspeed:max",
    "rainrate:sum",
    "humidity:min",
)
#: Cheap divergent tails: projections over the aggregate's output row.
TAIL_POOL = (
    ("avgtemperature",),
    ("maxwindspeed",),
    ("sumrainrate",),
    ("minhumidity",),
    ("avgtemperature", "maxwindspeed"),
    ("avgtemperature", "sumrainrate", "minhumidity"),
)

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_multiquery.json"


def aggregate_field_names():
    agg = AggregateOperator(
        WindowSpec(WindowType.TUPLE, 32, 8),
        [AggregationSpec.parse(text) for text in AGGREGATIONS],
    )
    return [f.name for f in agg.output_schema(WEATHER_SCHEMA)]


#: Tail attribute names must exist in the aggregate output schema.
assert set(sum(TAIL_POOL, ())) <= set(aggregate_field_names()), (
    TAIL_POOL,
    aggregate_field_names(),
)


def build_queries(fanout):
    """*fanout* chains: family-shared filter + window aggregation, then
    a per-member projection tail drawn round-robin from the pool."""
    graphs = []
    for member in range(fanout):
        family = member % N_FAMILIES
        tail = TAIL_POOL[(member // N_FAMILIES) % len(TAIL_POOL)]
        graphs.append(
            QueryGraph("weather")
            .append(FilterOperator(FAMILY_CONDITIONS[family]))
            .append(
                AggregateOperator(
                    WindowSpec(WindowType.TUPLE, 32, 8),
                    [AggregationSpec.parse(text) for text in AGGREGATIONS],
                )
            )
            .append(MapOperator(list(tail)))
        )
    return graphs


def timed_run(shared, fanout):
    """Best-of-3 ingest time for the full stream against *fanout*
    registered queries; returns (seconds, final run's outputs, stats)."""
    best, outputs, stats = None, None, None
    for _ in range(3):
        engine = StreamEngine(shared=shared)
        engine.register_input_stream("weather", WEATHER_SCHEMA)
        handles = [engine.register_query(g) for g in build_queries(fanout)]
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            engine.push_batch("weather", TUPLES)
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
        outputs = [[t.values for t in engine.read(h)] for h in handles]
        stats = engine.plan_stats().get("weather")
        # Shared nodes must be refcount-released once every query goes.
        for handle in handles:
            engine.withdraw(handle)
        if shared:
            (drained,) = engine.plan_stats().values()
            assert drained["live_nodes"] == 0
            assert drained["queries"] == 0
    return best, outputs, stats


def test_fanout_sweep(benchmark):
    """Shared plan vs per-query pipelines at fan-out 10 and 100."""

    def sweep():
        results = {}
        for fanout in FANOUTS:
            per_query_s, per_query_out, _ = timed_run(False, fanout)
            shared_s, shared_out, stats = timed_run(True, fanout)
            # Sharing must be output-invisible: both sides are compiled,
            # identically batched, so equality is exact.
            assert shared_out == per_query_out
            # Fan-out 10 is one member per family: only the subsumption
            # ladder shares; above that, exact prefix merges dominate.
            assert stats["nodes_shared"] + stats["nodes_subsumed"] > 0
            if fanout > N_FAMILIES:
                assert stats["nodes_shared"] > 0
            results[fanout] = {
                "queries": fanout,
                "tuples": len(TUPLES),
                "per_query_s": per_query_s,
                "shared_s": shared_s,
                "speedup": per_query_s / shared_s,
                "plan": stats,
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header(
        f"Multi-query fan-out — shared plan vs per-query pipelines "
        f"({len(TUPLES)} tuples, {N_FAMILIES} families)"
    )
    for fanout, row in results.items():
        plan = row["plan"]
        print(
            f"  {fanout:>3d} queries: per-query "
            f"{len(TUPLES) / row['per_query_s']:>9.0f} t/s"
            f"   shared {len(TUPLES) / row['shared_s']:>9.0f} t/s"
            f"   ({row['speedup']:.1f}x; {plan['nodes_created']} nodes for "
            f"{fanout} queries, {plan['nodes_subsumed']} subsumed)"
        )
    RESULTS_PATH.write_text(
        json.dumps(
            {
                "fanout": {str(f): results[f] for f in FANOUTS},
                "families": N_FAMILIES,
                "aggregations": list(AGGREGATIONS),
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance criterion: ≥ 3x at fan-out 100.  BENCH_SMOKE_RELAXED
    # lowers the gate on noisy shared CI runners while still catching a
    # disabled sharing path (which would benchmark at ~1x).
    floor = 1.5 if os.environ.get("BENCH_SMOKE_RELAXED") else 3.0
    assert results[100]["speedup"] >= floor
    # Per-query cost must actually be sublinear: the shared engine's
    # 10x fan-out increase may not cost 10x ingest time.
    assert results[100]["shared_s"] < results[10]["shared_s"] * 5
