"""Served-latency benchmark — the asyncio front-end under load.

One real :class:`AsyncDataServer` (loopback TCP, ephemeral port) is
driven by 8 concurrent pipelined connections through a seeded mixed
workload — decide-only evaluates, stream ingests, and policy
load/update/revoke churn — ≥10k requests total.  The server-side
:class:`LatencyRecorder` yields p50/p90/p99 per op type (the
dbworkload-style run table), and a second phase measures what
pipelining buys: the same evaluate stream one-request-per-round-trip
versus pipelined in chunks, on the same connections.

Everything lands in ``BENCH_served_latency.json`` (folded into
``BENCH_trajectory.json`` by the aggregator; the pipelining speedup is
the headline).  A decision-equivalence sample against the in-process
PDP runs before anything is timed.

A third phase (PR 7) measures supervised recovery: the same front-end
over a 4-shard ``ProcessShardPool`` in ``on_unavailable="error"`` mode,
with one worker SIGKILLed mid-run while retrying clients keep driving.
Reported: recovery time (kill → first successful reply routed to the
killed shard) and the p99 impact on client-observed evaluate latency
(post-kill window vs pre-kill baseline).
"""

import asyncio
import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.core import stream_policy
from repro.framework.network import SimulatedNetwork
from repro.loadgen.mix import derive_seed
from repro.framework.server import DataServer
from repro.serving import AsyncClient, AsyncDataServer
from repro.serving.wire import (
    EvaluateOp,
    EvaluateReply,
    IngestOp,
    LoadOp,
    RevokeOp,
    UpdateOp,
)
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml.request import Request
from repro.xacml.sharding import ProcessShardPool
from repro.xacml.xml_io import policy_to_xml, request_to_xml

N_CONNECTIONS = 8
OPS_PER_CONNECTION = 1_300          # 8 × 1300 = 10 400 ≥ 10k requests
PIPELINE_CHUNK = 64
N_STREAMS = 8
SUBJECTS_PER_STREAM = 12
INGEST_BATCH = 5
N_PIPELINE_PROBE = 250              # per connection, each phase
N_RECOVERY_SHARDS = 4
N_RECOVERY_CONNECTIONS = 4
RECOVERY_OPS = 400                  # per connection
RECOVERY_WARMUP = 300               # completed ops before the kill
SEED = 4_1_2012
# Distinct seed domains per workload phase; integer tags because
# derive_seed mixes arithmetic parts (string hash() is salted per
# process and would break cross-run reproducibility).
SCRIPT_DOMAIN = 1
PROBE_DOMAIN = 2
RECOVERY_DOMAIN = 3

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_served_latency.json"


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def stream_name(index: int) -> str:
    return f"weather_b{index % N_STREAMS}"


def make_graph(stream: str, threshold: int = 5) -> QueryGraph:
    return QueryGraph(stream).append(FilterOperator(f"rainrate > {threshold}"))


def make_server(pdp_shards=None) -> DataServer:
    network = SimulatedNetwork()
    engine = StreamEngine()
    for index in range(N_STREAMS):
        engine.register_input_stream(stream_name(index), WEATHER_SCHEMA)
    server = DataServer(
        network,
        engine=engine,
        enforce_single_access=False,
        allow_partial_results=True,
        pdp_shards=pdp_shards,
    )
    for index in range(N_STREAMS):
        for j in range(SUBJECTS_PER_STREAM):
            server.load_policy(
                stream_policy(
                    f"p:{index}:{j}",
                    stream_name(index),
                    make_graph(stream_name(index)),
                    subject=f"user{index}:{j}",
                )
            )
    return server


def evaluate_op(rng: random.Random) -> EvaluateOp:
    index = rng.randrange(N_STREAMS)
    # 1-in-5 requests come from a subject no policy permits.
    if rng.random() < 0.2:
        subject = f"stranger{rng.randrange(1000)}"
    else:
        subject = f"user{index}:{rng.randrange(SUBJECTS_PER_STREAM)}"
    return EvaluateOp(
        request_to_xml(Request.simple(subject, stream_name(index))),
        None,
        True,  # decide-only: pure PDP latency, no engine registration
    )


def ingest_op(rng: random.Random) -> IngestOp:
    records = [
        {
            "samplingtime": i,
            "temperature": rng.uniform(20, 35),
            "humidity": rng.uniform(40, 95),
            "solarradiation": rng.uniform(0, 800),
            "rainrate": rng.uniform(0, 12),
            "windspeed": rng.uniform(0, 20),
            "winddirection": rng.randrange(360),
            "barometer": rng.uniform(980, 1040),
        }
        for i in range(INGEST_BATCH)
    ]
    return IngestOp(stream_name(rng.randrange(N_STREAMS)), records)


def build_script(connection_id: int, length: int = OPS_PER_CONNECTION):
    """Seeded mixed script: ~77% evaluate, ~8% ingest, ~15% churn."""
    rng = random.Random(derive_seed(SEED, SCRIPT_DOMAIN, connection_id))
    churn_stream = stream_name(connection_id)
    ops = []
    churn_sequence = 0
    live = []
    for _ in range(length):
        roll = rng.random()
        if roll < 0.77:
            ops.append(evaluate_op(rng))
        elif roll < 0.85:
            ops.append(ingest_op(rng))
        else:
            kind = rng.choice(["load", "update", "revoke"])
            if kind == "load" or not live:
                pid = f"churn:{connection_id}:{churn_sequence}"
                churn_sequence += 1
                live.append(pid)
                ops.append(
                    LoadOp(
                        policy_to_xml(
                            stream_policy(
                                pid,
                                churn_stream,
                                make_graph(churn_stream, rng.randint(1, 9)),
                                subject=f"churn-user:{connection_id}",
                            )
                        )
                    )
                )
            elif kind == "update":
                ops.append(
                    UpdateOp(
                        policy_to_xml(
                            stream_policy(
                                rng.choice(live),
                                churn_stream,
                                make_graph(churn_stream, rng.randint(1, 9)),
                                subject=f"churn-user:{connection_id}",
                            )
                        )
                    )
                )
            else:
                ops.append(RevokeOp(live.pop(rng.randrange(len(live)))))
    return ops


async def assert_served_equivalence(front: AsyncDataServer, server: DataServer):
    """Decide-only served replies ≡ the in-process PDP, on a sample."""
    rng = random.Random(99)
    ops = [evaluate_op(rng) for _ in range(200)]
    async with await AsyncClient.connect("127.0.0.1", front.port) as client:
        replies = await client.pipeline(ops)
    from repro.xacml.xml_io import parse_request_xml

    for op, reply in zip(ops, replies):
        expected = server.instance.pdp.evaluate(parse_request_xml(op.request_xml))
        assert reply.decision == expected.decision.value
        assert reply.policy_id == expected.policy_id


async def drive_mixed(front: AsyncDataServer, scripts):
    async def drive(script):
        async with await AsyncClient.connect("127.0.0.1", front.port) as client:
            for start in range(0, len(script), PIPELINE_CHUNK):
                await client.pipeline(script[start:start + PIPELINE_CHUNK])

    started = time.perf_counter()
    await asyncio.gather(*(drive(script) for script in scripts))
    return time.perf_counter() - started


async def drive_evaluates(front: AsyncDataServer, pipelined: bool):
    """The same evaluate stream, serial round-trips vs pipelined."""
    scripts = [
        [
            evaluate_op(random.Random(derive_seed(SEED, PROBE_DOMAIN, cid, int(pipelined))))
            for _ in range(N_PIPELINE_PROBE)
        ]
        for cid in range(N_CONNECTIONS)
    ]

    async def drive(script):
        async with await AsyncClient.connect("127.0.0.1", front.port) as client:
            if pipelined:
                for start in range(0, len(script), PIPELINE_CHUNK):
                    await client.pipeline(script[start:start + PIPELINE_CHUNK])
            else:
                for op in script:
                    await client.call(op)

    started = time.perf_counter()
    await asyncio.gather(*(drive(script) for script in scripts))
    return time.perf_counter() - started


def p99_ms(samples):
    ordered = sorted(samples)
    return ordered[int(0.99 * (len(ordered) - 1))] * 1000.0


async def run_recovery_benchmark():
    """Kill one shard worker mid-run; measure recovery and p99 impact.

    ``on_unavailable="error"`` is deliberate: fallback mode would hide
    the outage entirely, so nothing could be measured.  The retrying
    clients see retryable errors until the supervisor's rebuild
    readmits the worker — recovery time is the kill-to-first-success
    gap on a request pinned to the killed shard.
    """
    server = make_server(pdp_shards=N_RECOVERY_SHARDS)
    store = server.instance.store
    target_request = Request.simple("user0:0", stream_name(0))
    (target_shard,) = store.shards_for_request(target_request)
    target_op = EvaluateOp(request_to_xml(target_request), None, True)

    latencies = {"pre": [], "post": []}
    marks = {"killed_at": None, "recovered_at": None}
    progress = {"completed": 0}
    retry_kw = dict(max_retries=200, retry_base_delay=0.01, retry_max_delay=0.1)

    with ProcessShardPool(
        store, on_unavailable="error", restart_backoff=0.05
    ) as pool:
        async with AsyncDataServer(server, pool=pool, max_in_flight=512) as front:
            loop = asyncio.get_running_loop()

            async def driver(connection_id):
                rng = random.Random(derive_seed(SEED, RECOVERY_DOMAIN, connection_id))
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, **retry_kw
                )
                async with client:
                    for _ in range(RECOVERY_OPS):
                        op = evaluate_op(rng)
                        started = loop.time()
                        reply = await client.call(op)
                        elapsed = loop.time() - started
                        assert isinstance(reply, EvaluateReply), reply
                        window = "post" if marks["killed_at"] else "pre"
                        latencies[window].append(elapsed)
                        progress["completed"] += 1
                    return client.retries_performed

            async def assassin():
                while progress["completed"] < RECOVERY_WARMUP:
                    await asyncio.sleep(0.005)
                client = await AsyncClient.connect(
                    "127.0.0.1", front.port, **retry_kw
                )
                async with client:
                    marks["killed_at"] = loop.time()
                    pool.kill_worker(target_shard, reason="bench: mid-run kill")
                    # One logical call whose retry loop rides through
                    # detection, backoff, respawn and replay: its
                    # completion IS the first post-kill success on the
                    # killed shard.
                    reply = await client.call(target_op)
                    assert isinstance(reply, EvaluateReply) and reply.ok, reply
                    marks["recovered_at"] = loop.time()
                    return client.retries_performed

            outcomes = await asyncio.gather(
                assassin(),
                *(driver(cid) for cid in range(N_RECOVERY_CONNECTIONS)),
            )
        health = pool.health()

    return {
        "model": "measured",
        "shards": N_RECOVERY_SHARDS,
        "connections": N_RECOVERY_CONNECTIONS,
        "requests": progress["completed"],
        "killed_shard": target_shard,
        "recovery_seconds": marks["recovered_at"] - marks["killed_at"],
        "p99_ms_pre_kill": p99_ms(latencies["pre"]),
        "p99_ms_post_kill": p99_ms(latencies["post"]),
        "p99_impact": p99_ms(latencies["post"]) / p99_ms(latencies["pre"]),
        "client_retries": sum(outcomes),
        "worker_restarts": health["worker_restarts"],
        "degraded_shards": health["degraded_shards"],
    }


async def run_served_benchmark():
    server = make_server()
    scripts = [build_script(cid) for cid in range(N_CONNECTIONS)]
    total_ops = sum(len(script) for script in scripts)
    async with AsyncDataServer(server, max_in_flight=512) as front:
        await assert_served_equivalence(front, server)
        front.stats = type(front.stats)()  # timing starts clean
        mixed_seconds = await drive_mixed(front, scripts)
        latency = front.stats.to_dict()
        table = front.stats.table()
        serial_seconds = await drive_evaluates(front, pipelined=False)
        pipelined_seconds = await drive_evaluates(front, pipelined=True)
    probe_ops = N_CONNECTIONS * N_PIPELINE_PROBE
    return {
        "workload": {
            "connections": N_CONNECTIONS,
            "requests": total_ops,
            "pipeline_chunk": PIPELINE_CHUNK,
            "streams": N_STREAMS,
            "policies": N_STREAMS * SUBJECTS_PER_STREAM,
            "cpus": cpu_count(),
        },
        "mixed": {
            "model": "measured",
            "seconds": mixed_seconds,
            "throughput_rps": total_ops / mixed_seconds,
            "read_pauses": front.read_pauses,
        },
        "latency_ms": latency,
        "table": table,
        "pipelining": {
            "model": "measured",
            "probe_requests": probe_ops,
            "serial_seconds": serial_seconds,
            "pipelined_seconds": pipelined_seconds,
            "serial_rps": probe_ops / serial_seconds,
            "pipelined_rps": probe_ops / pipelined_seconds,
            "speedup_vs_serial": serial_seconds / pipelined_seconds,
        },
    }


def test_served_latency_percentiles(benchmark):
    relaxed = bool(os.environ.get("BENCH_SMOKE_RELAXED"))

    def sweep():
        results = asyncio.run(run_served_benchmark())
        results["recovery"] = asyncio.run(run_recovery_benchmark())
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    workload = results["workload"]
    print_header(
        f"Served latency — {workload['requests']} requests over "
        f"{workload['connections']} pipelined connections, "
        f"{workload['cpus']} cpu(s)"
    )
    print(results["table"])
    mixed = results["mixed"]
    print(
        f"  mixed workload  : {mixed['throughput_rps']:>10.0f} req/s "
        f"({mixed['read_pauses']} read pauses)"
    )
    pipelining = results["pipelining"]
    print(
        f"  serial          : {pipelining['serial_rps']:>10.0f} req/s\n"
        f"  pipelined       : {pipelining['pipelined_rps']:>10.0f} req/s "
        f"({pipelining['speedup_vs_serial']:.1f}x vs serial)"
    )
    recovery = results["recovery"]
    print(
        f"  worker kill     : shard {recovery['killed_shard']} of "
        f"{recovery['shards']}, recovered in "
        f"{recovery['recovery_seconds'] * 1000:.0f} ms "
        f"({recovery['worker_restarts']} restart(s), "
        f"{recovery['client_retries']} client retries)\n"
        f"  evaluate p99    : {recovery['p99_ms_pre_kill']:.2f} ms pre-kill, "
        f"{recovery['p99_ms_post_kill']:.2f} ms post-kill "
        f"({recovery['p99_impact']:.1f}x)"
    )
    RESULTS_PATH.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")

    # Acceptance: the ISSUE's floor — ≥10k requests over ≥8 connections
    # with per-op percentiles — plus sane percentile ordering and a
    # pipelining win (relaxed on shared CI runners).
    assert workload["requests"] >= 10_000
    assert workload["connections"] >= 8
    latency = results["latency_ms"]
    for op in ("EvaluateOp", "IngestOp", "LoadOp", "UpdateOp", "RevokeOp"):
        assert op in latency, f"no latency recorded for {op}"
        stats = latency[op]
        assert stats["count"] > 0
        assert stats["p50_ms"] <= stats["p90_ms"] <= stats["p99_ms"] <= stats["max_ms"]
    floor = 1.0 if relaxed else 1.2
    assert pipelining["speedup_vs_serial"] >= floor
    # Recovery gates: the kill really happened and really healed —
    # without pool reconstruction and without exhausting the budget —
    # and recovery stayed within the supervision design envelope
    # (detection ≤ 0.1 s + backoff + respawn/replay; generous headroom
    # on shared runners).  The p99 numbers are reported, not gated:
    # client-observed latency through a retry loop is too noisy to
    # gate on a shared runner.
    assert recovery["worker_restarts"] >= 1
    assert recovery["degraded_shards"] == []
    assert recovery["client_retries"] >= 1
    assert recovery["recovery_seconds"] < (30.0 if relaxed else 10.0)
