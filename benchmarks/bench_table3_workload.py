"""Table 3 — workload generation at the paper's exact parameters.

Regenerates the experiment inputs: 1500 requests over 1000 unique
policies with query-graph shapes drawn from the composition
160:170:130:124:254:290:372, and checks the Zipf sequence parameters
(α = 0.223, maxRank = 300).
"""

from collections import Counter

from benchmarks.conftest import print_header
from repro.workload.generator import (
    SHAPE_COMPOSITION,
    TABLE3,
    WorkloadGenerator,
)
from repro.workload.zipf import zipf_ranks


def test_table3_workload_generation(benchmark):
    generator = WorkloadGenerator(seed=2012)
    items = benchmark.pedantic(generator.generate, rounds=1, iterations=1)

    assert len(items) == TABLE3.n_requests == 1500
    unique_policies = {item.policy.policy_id for item in items}
    assert len(unique_policies) == TABLE3.n_policies == 1000

    print_header("Table 3 workload — shape composition (paper : measured)")
    shape_counts = Counter(item.shape for item in items)
    total_share = sum(SHAPE_COMPOSITION.values())
    for shape, paper_share in SHAPE_COMPOSITION.items():
        expected = round(paper_share * TABLE3.n_requests / total_share)
        print(f"  {shape:>9s}: paper≈{expected:4d}  measured={shape_counts[shape]:4d}")
    # The generated composition must track the paper's within rounding.
    for shape, paper_share in SHAPE_COMPOSITION.items():
        expected = paper_share * TABLE3.n_requests / total_share
        assert abs(shape_counts[shape] - expected) <= 0.05 * TABLE3.n_requests

    with_queries = sum(1 for item in items if item.user_query is not None)
    print(f"  requests carrying a customised user query: {with_queries}")
    print(f"  direct-query scripts generated: {len(items)}")

    ranks = zipf_ranks(
        TABLE3.n_requests, TABLE3.zipf_alpha, TABLE3.zipf_max_rank, seed=42
    )
    assert max(ranks) <= 300 and min(ranks) >= 1
    print(f"  Zipf sequence: {len(set(ranks))} distinct ranks of maxRank=300, "
          f"alpha={TABLE3.zipf_alpha}")
