"""Ablation A4 — proxy cache benefit vs request-distribution skew.

Figure 6(b) uses the paper's single operating point (α = 0.223,
maxRank = 300).  This ablation sweeps the Zipf skew to show how hit rate
and mean response time respond — the justification for "the importance
to have [a] cache mechanism implemented in proxy when the request
distribution is heavy-tailed".
"""

from benchmarks.conftest import make_runner, print_header


def run_at_alpha(alpha, n_requests=400, n_policies=300, max_rank=150):
    runner, generator = make_runner(
        n_requests=n_requests, n_policies=n_policies,
        cache_enabled=True, cache_capacity=60,
    )
    items = generator.generate()
    runner.load_policies(items)
    traces = runner.run_zipf(
        items, alpha=alpha, max_rank=max_rank, system_label="exacml+cache"
    )
    ok = [t for t in traces if t.outcome == "ok"]
    mean_total = sum(t.total for t in ok) / len(ok)
    return runner.proxy.hit_rate, mean_total


def test_cache_benefit_grows_with_skew(benchmark):
    print_header("Ablation A4 — cache hit rate and latency vs Zipf skew α")
    print(f"  {'alpha':>6s} {'hit rate':>9s} {'mean total(s)':>14s}")
    results = {}

    def sweep():
        for alpha in (0.0, 0.223, 0.6, 1.0, 1.4):
            hit_rate, mean_total = run_at_alpha(alpha)
            results[alpha] = (hit_rate, mean_total)
            print(f"  {alpha:>6.3f} {hit_rate:>9.2f} {mean_total:>14.3f}")

    benchmark.pedantic(sweep, rounds=1, iterations=1)

    # Heavier tails → more hits → lower mean latency.
    assert results[1.4][0] > results[0.0][0]
    assert results[1.4][1] < results[0.0][1]
    # The paper's operating point already benefits measurably.
    assert results[0.223][0] > 0.2


def test_cache_run_cost(benchmark):
    benchmark.pedantic(
        run_at_alpha, args=(0.223,), kwargs={"n_requests": 200, "n_policies": 150},
        rounds=1, iterations=1,
    )
