"""Ablation A2 — merging vs concatenating query graphs (Section 3.1).

The paper argues that "properly merging [graphs] together gains
advantages such as reducing the number of operators in query graph and
therefore improving efficiency".  This bench quantifies both halves:
operator-count reduction, and per-tuple engine throughput of the merged
pipeline vs the naive policy-graph-then-user-graph concatenation.
"""

from benchmarks.conftest import print_header
from repro.core.merge import merge_query_graphs
from repro.streams.graph import QueryGraph
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource
from tests.conftest import build_lta_user_query, build_nea_policy_graph


def concatenated_graph():
    """Policy graph followed by the user graph, no merging."""
    policy = build_nea_policy_graph()
    user = build_lta_user_query()
    graph = QueryGraph("weather", name="concatenated")
    for operator in policy.operators:
        graph.append(operator.fresh_copy())
    # After the policy aggregation the schema is (lastvalsamplingtime,
    # avgrainrate, maxwindspeed); the user's operators must be rewritten
    # against it — which is exactly the awkwardness merging avoids.  The
    # honest concatenation applies the user's *intent* on renamed columns.
    from repro.streams.operators import (
        AggregateOperator,
        AggregationSpec,
        FilterOperator,
        MapOperator,
    )

    graph.append(FilterOperator("avgrainrate > 50"))
    graph.append(MapOperator(["lastvalsamplingtime", "avgrainrate"]))
    graph.append(
        AggregateOperator(
            user.window,
            [
                AggregationSpec.parse("lastvalsamplingtime:lastval"),
                AggregationSpec.parse("avgrainrate:avg"),
            ],
        )
    )
    return graph


def merged_graph():
    return merge_query_graphs(
        build_nea_policy_graph(),
        build_lta_user_query().to_query_graph(),
        schema=WEATHER_SCHEMA,
    ).graph


def push_through(graph, tuples):
    instance = graph.instantiate(WEATHER_SCHEMA)
    emitted = 0
    for tup in tuples:
        emitted += len(instance.process(tup))
    return emitted


def test_merge_operation_cost(benchmark):
    policy = build_nea_policy_graph()
    user = build_lta_user_query().to_query_graph()
    benchmark(
        lambda: merge_query_graphs(policy, user, schema=WEATHER_SCHEMA)
    )


def test_merged_vs_concatenated_throughput(benchmark):
    import time

    merged = merged_graph()
    concatenated = concatenated_graph()
    benchmark.pedantic(
        push_through, args=(merged, WeatherSource(seed=3).tuples(1_000)),
        rounds=1, iterations=1,
    )
    print_header("Ablation A2 — merged vs concatenated query graphs")
    print(f"  operators merged      : {len(merged)}")
    print(f"  operators concatenated: {len(concatenated)}")
    assert len(merged) < len(concatenated)

    tuples = WeatherSource(seed=3).tuples(20_000)
    results = {}
    for label, graph in (("merged", merged), ("concatenated", concatenated)):
        started = time.perf_counter()
        push_through(graph, tuples)
        elapsed = time.perf_counter() - started
        results[label] = len(tuples) / elapsed
        print(f"  {label:>13s}: {results[label]:>10.0f} tuples/s")

    speedup = results["merged"] / results["concatenated"]
    print(f"  merged speedup: {speedup:.2f}x")
    assert speedup > 1.0, "merging must not be slower than concatenation"
