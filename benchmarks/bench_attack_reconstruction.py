"""Security demo (Section 3.4) — the reconstruction attack and its cost.

Regenerates the paper's Example 2 as a measurable experiment: how much
of the raw stream leaks through concurrent sum windows, how cheap the
attack arithmetic is, and that the single-access guard stops it with
negligible request-path overhead.
"""

import time

from benchmarks.conftest import print_header
from repro.core.attack import MultiWindowAttack, reconstruct_from_windows
from repro.errors import ConcurrentAccessError


def test_attack_recovers_stream(benchmark):
    def run_attack():
        victim = MultiWindowAttack.build_victim_instance(
            enforce_single_access=False, base_size=3, step=2
        )
        attack = MultiWindowAttack(victim, base_size=3, step=2)
        return attack.run(list(range(200)))

    recovered = benchmark.pedantic(run_attack, rounds=1, iterations=1)

    values = list(range(200))
    exact = sum(1 for i, v in recovered.items() if values[i] == v)
    print_header("Section 3.4 — multi-window reconstruction attack")
    print(f"  policy exposes  : sum windows (size 3, step 2) only")
    print(f"  attacker holds  : 3 concurrent windows (sizes 3, 4, 5)")
    print(f"  stream length   : {len(values)} tuples")
    print(f"  recovered       : {len(recovered)} tuples "
          f"({exact} exact, from a3 onward)")
    assert exact == len(recovered)
    assert len(recovered) >= len(values) - 10


def test_reconstruction_arithmetic_cost(benchmark):
    values = list(range(5_000))
    streams = []
    step = 2
    for size in (3, 4, 5):
        sums = []
        k = 0
        while k * step + size <= len(values):
            sums.append(sum(values[k * step: k * step + size]))
            k += 1
        streams.append(sums)
    recovered = benchmark(lambda: reconstruct_from_windows(streams, 3, step))
    assert len(recovered) >= 4_900


def test_guard_blocks_and_costs_little(benchmark):
    print_header("Section 3.4 — single-access guard")
    guarded = MultiWindowAttack.build_victim_instance(enforce_single_access=True)
    attack = MultiWindowAttack(guarded)

    def run_blocked_attack():
        try:
            attack.run(list(range(50)))
            return False
        except ConcurrentAccessError:
            return True

    started = time.perf_counter()
    blocked = benchmark.pedantic(run_blocked_attack, rounds=1, iterations=1)
    elapsed = time.perf_counter() - started
    print(f"  attack blocked : {blocked} (rejected in {elapsed * 1000:.1f} ms)")
    assert blocked

    # Overhead of the registry check on the request path: compare a
    # single request with enforcement on vs off.
    from repro.xacml.request import Request
    from repro.core.user_query import UserQuery
    from repro.streams.operators import WindowSpec, WindowType

    def one_request(enforce):
        victim = MultiWindowAttack.build_victim_instance(enforce)
        started = time.perf_counter()
        result = victim.request_stream(
            Request.simple("attacker", "s"),
            UserQuery("s", window=WindowSpec(WindowType.TUPLE, 3, 2),
                      aggregations=["a:sum"]),
        )
        elapsed = time.perf_counter() - started
        victim.release_stream(result.handle)
        return elapsed

    with_guard = min(one_request(True) for _ in range(20))
    without_guard = min(one_request(False) for _ in range(20))
    print(f"  request path with guard   : {with_guard * 1000:.2f} ms")
    print(f"  request path without guard: {without_guard * 1000:.2f} ms")
    assert with_guard < without_guard * 3 + 0.01
