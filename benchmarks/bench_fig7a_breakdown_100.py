"""Figure 7(a) — detailed processing time of 100 AC requests (50 policies).

Per-request breakdown: total response time, PDP evaluation, query-graph
manipulation, submission to the DSMS.  Paper shape: PDP and query-graph
times stay below 0.01 s; submission takes ~1/3 of total on average with
much larger variance; the slow cases cluster at the start of the
sequence (StreamBase connection establishment).
"""

from benchmarks.conftest import make_runner, print_header
from repro.workload.report import breakdown_summary, breakdown_table


def run_breakdown_100():
    runner, generator = make_runner(n_requests=100, n_policies=50)
    items = generator.generate()
    runner.load_policies(items)
    traces = runner.run_unique(items)
    return runner, traces


def test_fig7a_breakdown_100_requests(benchmark):
    runner, traces = benchmark.pedantic(run_breakdown_100, rounds=1, iterations=1)
    assert len(traces) == 100

    print_header("Figure 7(a) — processing time breakdown, 100 requests / 50 policies")
    print(breakdown_table(traces, sample_every=10))
    stats = breakdown_summary(traces)
    print()
    print(f"  PDP mean            : {stats['pdp'].mean * 1000:.2f} ms "
          f"(paper: < 10 ms, consistent)")
    print(f"  QueryGraph mean     : {stats['query_graph'].mean * 1000:.2f} ms")
    print(f"  PDP+graph < 10 ms   : {stats['pdp_graph_under_10ms']:.2f} of requests")
    print(f"  DSMS submit share   : {stats['submit_share']:.2f} (paper: ~1/3)")

    # Slow submissions cluster at the beginning (connection establishment).
    early = max(t.dsms_submit for t in traces[:8])
    late = max(t.dsms_submit for t in traces[20:])
    print(f"  max submit (first 8): {early:.2f} s   max submit (rest): {late:.2f} s")

    assert stats["pdp"].mean < 0.01
    assert stats["query_graph"].mean < 0.01
    assert stats["pdp_graph_under_10ms"] > 0.95
    assert 0.15 < stats["submit_share"] < 0.55
    assert early > late, "slow first connections must appear at sequence start"
