"""Figure 6(a) — CDF of request-fulfilment time, unique sequence.

1500 direct queries and 1500 unique eXACML+ requests (Table 3).  Paper
shape: both systems answer most requests in under one second; the direct
query curve is tighter and to the left; eXACML+ carries a roughly
constant overhead dominated by network traffic (~2/3 of response time).
"""

from benchmarks.conftest import make_runner, print_header
from repro.workload.report import breakdown_summary, cdf_table, summary_table


def run_unique_experiment():
    runner, generator = make_runner()
    items = generator.generate()
    runner.load_policies(items)
    runner.run_direct(items)
    traces = runner.run_unique(items)
    return runner, traces


def test_fig6a_unique_sequence(benchmark):
    runner, traces = benchmark.pedantic(
        run_unique_experiment, rounds=1, iterations=1
    )
    metrics = runner.metrics

    print_header("Figure 6(a) — CDF of time to fulfil requests (unique sequence)")
    print(cdf_table(metrics, ["direct", "exacml+"]))
    print()
    print(summary_table(metrics, ["direct", "exacml+"]))

    stats = breakdown_summary(traces)
    print()
    print(f"  eXACML+ network share of total : {stats['network_share']:.2f} "
          f"(paper: about two thirds)")
    print(f"  sub-second fraction (eXACML+)  : {stats['sub_second_fraction']:.3f} "
          f"(paper: most requests < 1 s)")

    direct = metrics.summary("direct")
    exacml = metrics.summary("exacml+")
    # Shape assertions: who wins, and by what kind of factor.
    assert direct.mean < exacml.mean
    assert direct.p50 < exacml.p50
    assert exacml.mean / direct.mean < 4.0, "overhead must stay roughly constant"
    assert stats["sub_second_fraction"] > 0.9
    assert 0.45 < stats["network_share"] < 0.85
