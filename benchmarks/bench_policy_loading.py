"""Section 4.2 (text) — policy loading cost.

Paper: "Loading a policy onto server takes a small amount of time
without respect to the number of policies already loaded.  The average
loading time is 0.25 second with standard deviation of 0.06 second."
"""

from benchmarks.conftest import make_runner, print_header
from repro.framework.metrics import summarize
from repro.workload.report import policy_load_summary


def test_policy_loading_flat_in_store_size(benchmark):
    runner, generator = make_runner()
    items = generator.generate()

    load_times = benchmark.pedantic(
        runner.load_policies, args=(items,), rounds=1, iterations=1
    )
    assert len(load_times) == 1000

    mean, stdev = policy_load_summary(load_times)
    print_header("Policy loading (paper: 0.25 s ± 0.06 s, flat in #policies)")
    print(f"  measured mean  : {mean:.3f} s   (paper 0.25 s)")
    print(f"  measured stdev : {stdev:.3f} s   (paper 0.06 s)")

    first_hundred = summarize(load_times[:100]).mean
    last_hundred = summarize(load_times[-100:]).mean
    print(f"  first 100 loads: {first_hundred:.3f} s")
    print(f"  last 100 loads : {last_hundred:.3f} s   (flatness check)")

    assert abs(mean - 0.25) < 0.02
    assert abs(stdev - 0.06) < 0.02
    # Independence of store size: early and late loads look the same.
    assert abs(first_hundred - last_hundred) < 0.05
