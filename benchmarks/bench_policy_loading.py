"""Section 4.2 (text) — policy loading cost, plus PDP evaluation cost.

Paper: "Loading a policy onto server takes a small amount of time
without respect to the number of policies already loaded.  The average
loading time is 0.25 second with standard deviation of 0.06 second."

The second half benchmarks what a loaded store costs to *query*: the
seed's linear scan pays O(policies) per request, the indexed PDP only
evaluates the candidates its target index returns, and the decision
cache answers repeated (Zipf-popular) requests without evaluating at
all.
"""

import gc
import time

from benchmarks.conftest import make_runner, print_header
from repro.framework.metrics import summarize
from repro.workload.generator import WorkloadGenerator
from repro.workload.report import policy_load_summary
from repro.workload.zipf import zipf_sequence
from repro.xacml.pdp import PolicyDecisionPoint
from repro.xacml.store import PolicyStore


def test_policy_loading_flat_in_store_size(benchmark):
    runner, generator = make_runner()
    items = generator.generate()

    load_times = benchmark.pedantic(
        runner.load_policies, args=(items,), rounds=1, iterations=1
    )
    assert len(load_times) == 1000

    mean, stdev = policy_load_summary(load_times)
    print_header("Policy loading (paper: 0.25 s ± 0.06 s, flat in #policies)")
    print(f"  measured mean  : {mean:.3f} s   (paper 0.25 s)")
    print(f"  measured stdev : {stdev:.3f} s   (paper 0.06 s)")

    first_hundred = summarize(load_times[:100]).mean
    last_hundred = summarize(load_times[-100:]).mean
    print(f"  first 100 loads: {first_hundred:.3f} s")
    print(f"  last 100 loads : {last_hundred:.3f} s   (flatness check)")

    assert abs(mean - 0.25) < 0.02
    assert abs(stdev - 0.06) < 0.02
    # Independence of store size: early and late loads look the same.
    assert abs(first_hundred - last_hundred) < 0.05


def _loaded_store(items):
    store = PolicyStore()
    seen = set()
    for item in items:
        if item.policy.policy_id not in seen:
            seen.add(item.policy.policy_id)
            store.load(item.policy)
    return store


def test_pdp_evaluation_indexed_vs_linear(benchmark):
    """PDP evaluation against 1000 loaded policies: linear reference
    scan vs target index vs index + decision cache, over the Table 3
    Zipf request stream.  All three must agree on every decision."""
    generator = WorkloadGenerator(seed=2012)
    items = generator.generate()
    requests = zipf_sequence(
        [item.request for item in items], length=400, seed=17
    )

    def compare():
        results = {}
        modes = {
            "linear": dict(use_index=False, cache_size=0),
            "indexed": dict(use_index=True, cache_size=0),
            "indexed+cache": dict(use_index=True, cache_size=4096),
        }
        for mode, options in modes.items():
            store = _loaded_store(items)
            pdp = PolicyDecisionPoint(store, **options)
            # Single-shot timings: keep the collector's wandering gen2
            # pause (tens of ms against the heap the full bench session
            # accumulates) out of the measured window, or it lands in an
            # arbitrary mode's loop and flips the speedup assertions.
            gc.collect()
            gc.disable()
            try:
                started = time.perf_counter()
                decisions = [pdp.evaluate(request) for request in requests]
                elapsed = time.perf_counter() - started
            finally:
                gc.enable()
            results[mode] = (
                elapsed,
                [(r.decision, r.policy_id) for r in decisions],
                pdp.cache_hit_rate,
            )
        return results

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    linear_elapsed, linear_decisions, _ = results["linear"]
    n_policies = len({item.policy.policy_id for item in items})
    print_header(
        f"PDP evaluation — {n_policies} policies, {len(requests)} Zipf requests"
    )
    for mode, (elapsed, decisions, hit_rate) in results.items():
        per_request = elapsed / len(requests) * 1e6
        note = f"   (hit rate {hit_rate:.0%})" if mode == "indexed+cache" else ""
        print(
            f"  {mode:>14s}: {elapsed:8.3f} s total  {per_request:9.1f} µs/request"
            f"   {linear_elapsed / elapsed:6.1f}x{note}"
        )
        assert decisions == linear_decisions, f"{mode} diverged from linear scan"

    # The index prunes ~all of the 1000-policy scan (measured ~18x); /5
    # leaves room for scheduler noise on single-shot CI timings without
    # letting a disabled fast path slip through.
    assert results["indexed"][0] < linear_elapsed / 5
    # The cached run's win over the bare index is milliseconds — too
    # small to assert on a single-shot timing — so assert the cache
    # actually served the Zipf repeats instead.
    assert results["indexed+cache"][2] > 0.2
