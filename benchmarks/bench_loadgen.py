"""Closed-loop load-generation benchmark + regression gate.

One fixed-seed self-served run of the harness (`repro.loadgen`):
spawned worker processes pace mixed evaluate/ingest/churn traffic at a
target QPS over pipelined loopback connections, warmup excluded.  The
result — achieved-vs-target QPS, per-op percentiles, error/retry/
timeout counters — lands in ``BENCH_loadgen.json`` and folds into
``BENCH_trajectory.json`` via ``aggregate_bench.py``.

The regression gate: the serving stack must *sustain* the target rate
(attainment floor) and keep the evaluate tail bounded (p99 ceiling).
A scheduling regression in the server, a backpressure bug, or a
client-side pacing bug all surface here as a dropped attainment or a
blown tail.  ``BENCH_SMOKE_RELAXED`` loosens both floors for shared
CI runners; equivalence-style invariants (no errors, no timeouts)
stay strict.
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_header
from repro.loadgen.config import LoadgenConfig
from repro.loadgen.driver import run_loadgen

DURATION = 6.0
WARMUP = 1.0
TARGET_QPS = 500.0
SEED = 9_2012

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_loadgen.json"


def loadgen_config() -> LoadgenConfig:
    return LoadgenConfig(
        duration=DURATION,
        warmup=WARMUP,
        target_qps=TARGET_QPS,
        seed=SEED,
        processes=2,
        connections=2,
        report_interval=60.0,  # quiet: percentile table printed once below
        output=str(RESULTS_PATH),
    )


def test_loadgen_closed_loop(benchmark):
    relaxed = bool(os.environ.get("BENCH_SMOKE_RELAXED"))
    config = loadgen_config()

    report = benchmark.pedantic(
        lambda: run_loadgen(config), rounds=1, iterations=1
    )

    achieved = report["achieved"]
    print_header(
        f"Closed-loop loadgen — target {TARGET_QPS:.0f} qps over "
        f"{config.processes} process(es) x {config.connections} "
        f"connection(s), {config.measure_seconds:.0f}s measured"
    )
    print(report["table"])
    print(
        f"  achieved        : {achieved['qps']:>10.1f} qps "
        f"({achieved['attainment']:.2f} of target)\n"
        f"  errors/retries  : {sum(report['errors'].values()):>10d} / "
        f"{report['retries']}\n"
        f"  timeouts        : {report['timeouts']:>10d}"
    )

    # The artifact really landed and is the run we just measured.
    on_disk = json.loads(RESULTS_PATH.read_text())
    assert on_disk["achieved"]["measured_completions"] == (
        achieved["measured_completions"]
    )

    # Regression gates.  Attainment: the stack kept up with the target
    # rate (the closed loop makes shortfall honest — a lagging server
    # lowers achieved QPS instead of building a hidden backlog).
    attainment_floor = 0.5 if relaxed else 0.85
    assert achieved["attainment"] >= attainment_floor, (
        f"achieved {achieved['qps']:.1f} qps is "
        f"{achieved['attainment']:.2f} of the {TARGET_QPS:.0f} target "
        f"(floor {attainment_floor})"
    )
    # Tail: evaluate p99 at this (modest) rate stays interactive.  An
    # idle host measures ~7 ms; 100 ms leaves room for a moderately
    # loaded machine while still catching a genuine tail blow-up.
    latency = report["latency_ms"]
    assert latency.get("EvaluateOp", {}).get("count"), "no evaluate samples"
    p99_ceiling_ms = 250.0 if relaxed else 100.0
    assert latency["EvaluateOp"]["p99_ms"] <= p99_ceiling_ms, (
        f"evaluate p99 {latency['EvaluateOp']['p99_ms']:.1f} ms exceeds "
        f"{p99_ceiling_ms:.0f} ms"
    )
    for op, stats in latency.items():
        assert (
            stats["p50_ms"] <= stats["p90_ms"]
            <= stats["p99_ms"] <= stats["max_ms"]
        ), op
    # Strict invariants: a healthy single-process server refuses
    # nothing and never hangs the client past its deadline.
    assert report["errors"] == {}
    assert report["timeouts"] == 0
