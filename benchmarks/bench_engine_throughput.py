"""Ablation A5 — stream-engine throughput per operator chain.

Not a paper figure (the paper never measures tuple throughput of
StreamBase itself), but a substrate sanity benchmark: tuples/second
through each box type and through the full Example 1 chain, so engine
regressions are visible in bench history.
"""

import pytest

from benchmarks.conftest import print_header
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

TUPLES = WeatherSource(seed=3).tuples(2_000)


def graph_for(kind):
    graph = QueryGraph("weather")
    if kind == "filter":
        graph.append(FilterOperator("rainrate > 5"))
    elif kind == "map":
        graph.append(MapOperator(["samplingtime", "rainrate"]))
    elif kind == "aggregate":
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
    elif kind == "chain":
        graph.append(FilterOperator("rainrate > 5"))
        graph.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [
                    AggregationSpec.parse("samplingtime:lastval"),
                    AggregationSpec.parse("rainrate:avg"),
                    AggregationSpec.parse("windspeed:max"),
                ],
            )
        )
    return graph


@pytest.mark.parametrize("kind", ["filter", "map", "aggregate", "chain"])
def test_operator_throughput(benchmark, kind):
    instance = graph_for(kind).instantiate(WEATHER_SCHEMA)

    def push_all():
        for tup in TUPLES:
            instance.process(tup)

    benchmark(push_all)


def fanout_engine(n_queries=20):
    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    for i in range(n_queries):
        engine.register_query(
            QueryGraph("weather").append(FilterOperator(f"rainrate > {i}"))
        )
    return engine


def test_engine_fanout_throughput(benchmark):
    """One input stream feeding 20 registered continuous queries."""
    engine = fanout_engine()

    def push_all():
        for tup in TUPLES[:500]:
            engine.push("weather", tup)

    benchmark(push_all)


def test_engine_fanout_throughput_batched(benchmark):
    """The same fan-out fed through one `push_batch` call per round."""
    engine = fanout_engine()
    batch = TUPLES[:500]

    def push_all():
        engine.push_batch("weather", batch)

    benchmark(push_all)


def test_batched_ingest_equivalent_and_faster(benchmark):
    """push_batch must match per-tuple outputs, and the amortized
    dispatch must show through where per-push overhead matters (raw
    ingest).  Since PR 2 the batched path also wins at query fan-out:
    each query runs one compiled pipeline invocation per batch instead
    of one interpreted walk per tuple (see bench_operator_eval.py for
    the compiled-vs-interpreted sweep)."""
    import time

    def compare():
        timings = {}
        for n_queries in (0, 1, 5, 20):
            outputs = {}
            for mode in ("per-tuple", "batched"):
                # Best of three: single-shot wall-clock numbers run in
                # the CI smoke job, where one preemption would otherwise
                # flip the speedup assertion below.
                best = None
                for _ in range(3):
                    engine = fanout_engine(n_queries)
                    handles = [q.handle for q in engine.active_queries()]
                    started = time.perf_counter()
                    if mode == "per-tuple":
                        for tup in TUPLES:
                            engine.push("weather", tup)
                    else:
                        engine.push_batch("weather", TUPLES)
                    elapsed = time.perf_counter() - started
                    best = elapsed if best is None else min(best, elapsed)
                timings[(n_queries, mode)] = best
                outputs[mode] = [
                    [t["rainrate"] for t in engine.read(handle)]
                    for handle in handles
                ]
            assert outputs["per-tuple"] == outputs["batched"]
        return timings

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_header("Engine ingest — per-tuple vs batched (2000 tuples)")
    for n_queries in (0, 1, 5, 20):
        single = timings[(n_queries, "per-tuple")]
        batched = timings[(n_queries, "batched")]
        print(
            f"  fan-out {n_queries:>2d}: per-tuple {len(TUPLES) / single:>10.0f} t/s"
            f"   batched {len(TUPLES) / batched:>10.0f} t/s"
            f"   ({single / batched:.2f}x)"
        )
    # Raw ingest is where the per-push overhead lives; the batch path
    # must beat it by a wide, noise-proof margin.
    assert timings[(0, "batched")] < timings[(0, "per-tuple")] / 1.5


def test_report_throughput_numbers(benchmark):
    import time

    def report():
        print_header("Ablation A5 — engine throughput (tuples/s)")
        for kind in ("filter", "map", "aggregate", "chain"):
            instance = graph_for(kind).instantiate(WEATHER_SCHEMA)
            started = time.perf_counter()
            for tup in TUPLES:
                instance.process(tup)
            elapsed = time.perf_counter() - started
            print(f"  {kind:>9s}: {len(TUPLES) / elapsed:>10.0f} tuples/s")

    benchmark.pedantic(report, rounds=1, iterations=1)
