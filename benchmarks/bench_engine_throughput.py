"""Ablation A5 — stream-engine throughput per operator chain.

Not a paper figure (the paper never measures tuple throughput of
StreamBase itself), but a substrate sanity benchmark: tuples/second
through each box type and through the full Example 1 chain, so engine
regressions are visible in bench history.
"""

import pytest

from benchmarks.conftest import print_header
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

TUPLES = WeatherSource(seed=3).tuples(2_000)


def graph_for(kind):
    graph = QueryGraph("weather")
    if kind == "filter":
        graph.append(FilterOperator("rainrate > 5"))
    elif kind == "map":
        graph.append(MapOperator(["samplingtime", "rainrate"]))
    elif kind == "aggregate":
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [AggregationSpec.parse("rainrate:avg")],
            )
        )
    elif kind == "chain":
        graph.append(FilterOperator("rainrate > 5"))
        graph.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
        graph.append(
            AggregateOperator(
                WindowSpec(WindowType.TUPLE, 5, 2),
                [
                    AggregationSpec.parse("samplingtime:lastval"),
                    AggregationSpec.parse("rainrate:avg"),
                    AggregationSpec.parse("windspeed:max"),
                ],
            )
        )
    return graph


@pytest.mark.parametrize("kind", ["filter", "map", "aggregate", "chain"])
def test_operator_throughput(benchmark, kind):
    instance = graph_for(kind).instantiate(WEATHER_SCHEMA)

    def push_all():
        for tup in TUPLES:
            instance.process(tup)

    benchmark(push_all)


def test_engine_fanout_throughput(benchmark):
    """One input stream feeding 20 registered continuous queries."""
    engine = StreamEngine()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    for i in range(20):
        engine.register_query(
            QueryGraph("weather").append(FilterOperator(f"rainrate > {i}"))
        )

    def push_all():
        for tup in TUPLES[:500]:
            engine.push("weather", tup)

    benchmark(push_all)


def test_report_throughput_numbers(benchmark):
    import time

    def report():
        print_header("Ablation A5 — engine throughput (tuples/s)")
        for kind in ("filter", "map", "aggregate", "chain"):
            instance = graph_for(kind).instantiate(WEATHER_SCHEMA)
            started = time.perf_counter()
            for tup in TUPLES:
                instance.process(tup)
            elapsed = time.perf_counter() - started
            print(f"  {kind:>9s}: {len(TUPLES) / elapsed:>10.0f} tuples/s")

    benchmark.pedantic(report, rounds=1, iterations=1)
