"""Operator-evaluation benchmark — compiled vs interpreted, fan-out sweep.

The PR-2 tentpole compiles filter conditions to schema-specialised
closures and threads batch execution end-to-end.  This benchmark pins
the win: engine throughput at query fan-out 1/5/20 on the compiled +
batched path against the seed interpreted per-tuple path
(``StreamEngine.reference()``), plus a raw expression-evaluation
microbenchmark (closure vs AST walk).

Results are emitted to ``BENCH_operator_eval.json`` so the CI
bench-smoke job can archive them as an artifact.  The fan-out-5
speedup assertion is the PR's acceptance criterion (≥ 5x).
"""

import gc
import json
import os
import time
from pathlib import Path

from benchmarks.conftest import print_header
from repro.expr.compile import compile_predicate
from repro.expr.evaluate import evaluate
from repro.expr.parser import parse_condition
from repro.streams.engine import StreamEngine
from repro.streams.graph import QueryGraph
from repro.streams.operators import FilterOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

TUPLES = WeatherSource(seed=3).tuples(2_000)
FANOUTS = (1, 5, 20)
CONDITION = "rainrate > 5 AND windspeed < 30 OR temperature >= 25"

RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_operator_eval.json"


def best_of(n, fn):
    """Best-of-n wall clock with the GC held off the measured window
    (single-shot timings in the CI smoke job are otherwise at the mercy
    of wandering gen2 pauses against the session's accumulated heap)."""
    best = None
    for _ in range(n):
        gc.collect()
        gc.disable()
        try:
            started = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - started
        finally:
            gc.enable()
        best = elapsed if best is None else min(best, elapsed)
    return best


def make_engine(compiled, fanout):
    engine = StreamEngine() if compiled else StreamEngine.reference()
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    for i in range(fanout):
        engine.register_query(
            QueryGraph("weather").append(FilterOperator(f"rainrate > {i}"))
        )
    return engine


def test_expression_eval_compiled_vs_interpreted(benchmark):
    """Microbenchmark: one condition over 2000 tuples, closure vs AST."""
    expression = parse_condition(CONDITION)
    predicate = compile_predicate(expression, WEATHER_SCHEMA)

    def compare():
        interpreted = best_of(3, lambda: [evaluate(expression, t) for t in TUPLES])
        compiled = best_of(3, lambda: [predicate(t) for t in TUPLES])
        assert [predicate(t) for t in TUPLES] == [
            evaluate(expression, t) for t in TUPLES
        ]
        return {"interpreted_s": interpreted, "compiled_s": compiled}

    timings = benchmark.pedantic(compare, rounds=1, iterations=1)
    speedup = timings["interpreted_s"] / timings["compiled_s"]
    print_header("Expression evaluation — 2000 tuples, AST walk vs closure")
    print(
        f"  interpreted {timings['interpreted_s'] * 1e6 / len(TUPLES):8.2f} µs/tuple"
        f"   compiled {timings['compiled_s'] * 1e6 / len(TUPLES):8.2f} µs/tuple"
        f"   ({speedup:.1f}x)"
    )
    _merge_results({"expression_eval": {**timings, "speedup": speedup}})


def test_engine_fanout_compiled_vs_interpreted(benchmark):
    """End-to-end: push_batch through N registered filter queries,
    compiled+batched engine vs seed interpreted per-tuple engine."""

    def sweep():
        results = {}
        for fanout in FANOUTS:
            timings = {}
            outputs = {}
            for mode, compiled in (("interpreted", False), ("compiled", True)):
                best = None
                for _ in range(3):
                    engine = make_engine(compiled, fanout)
                    handles = [q.handle for q in engine.active_queries()]
                    gc.collect()
                    gc.disable()
                    try:
                        started = time.perf_counter()
                        engine.push_batch("weather", TUPLES)
                        elapsed = time.perf_counter() - started
                    finally:
                        gc.enable()
                    best = elapsed if best is None else min(best, elapsed)
                timings[mode] = best
                outputs[mode] = [
                    [t["rainrate"] for t in engine.read(handle)]
                    for handle in handles
                ]
            assert outputs["interpreted"] == outputs["compiled"]
            results[fanout] = {
                "interpreted_s": timings["interpreted"],
                "compiled_s": timings["compiled"],
                "speedup": timings["interpreted"] / timings["compiled"],
                "tuples": len(TUPLES),
            }
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_header("Engine throughput — compiled+batched vs interpreted (2000 tuples)")
    for fanout, row in results.items():
        print(
            f"  fan-out {fanout:>2d}: interpreted "
            f"{row['tuples'] / row['interpreted_s']:>10.0f} t/s"
            f"   compiled {row['tuples'] / row['compiled_s']:>10.0f} t/s"
            f"   ({row['speedup']:.1f}x)"
        )
    _merge_results({"engine_fanout": results})
    # Acceptance criterion: ≥ 5x at fan-out 5 (measured ~8x).  The CI
    # smoke job sets BENCH_SMOKE_RELAXED=1 to lower the gate to 2x:
    # shared-runner noise can compress single-shot ratios, and a red
    # build on an unrelated PR would teach people to ignore the gate —
    # 2x still catches a disabled or broken fast path outright.
    floor = 2.0 if os.environ.get("BENCH_SMOKE_RELAXED") else 5.0
    assert results[5]["speedup"] >= floor


def _merge_results(update: dict) -> None:
    """Accumulate this module's sections into one JSON artifact."""
    data = {}
    if RESULTS_PATH.exists():
        try:
            data = json.loads(RESULTS_PATH.read_text())
        except ValueError:
            data = {}
    data.update(update)
    data["tuples"] = len(TUPLES)
    data["condition"] = CONDITION
    RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
