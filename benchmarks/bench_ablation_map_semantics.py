"""Ablation A3 — map-merge semantics: the paper's union vs safe intersection.

Section 3.1's text merges map operators with S3 = S1 ∪ S2.  DESIGN.md
documents why this repository defaults to intersection: under union, a
user query naming an attribute the policy withholds would widen the
projection and leak it.  This bench demonstrates the leak concretely and
measures that the safe semantics costs nothing.
"""

import pytest

from benchmarks.conftest import print_header
from repro.core.merge import MergeOptions, merge_query_graphs
from repro.streams.graph import QueryGraph
from repro.streams.operators import MapOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

POLICY_ATTRS = ["samplingtime", "rainrate", "windspeed"]
SNEAKY_USER_ATTRS = ["rainrate", "temperature"]  # temperature is withheld


def graphs():
    policy = QueryGraph("weather").append(MapOperator(POLICY_ATTRS))
    user = QueryGraph("weather").append(MapOperator(SNEAKY_USER_ATTRS))
    return policy, user


def test_union_semantics_leaks_withheld_attribute(benchmark):
    policy, user = graphs()
    merged = benchmark.pedantic(
        lambda: merge_query_graphs(
            policy, user, schema=WEATHER_SCHEMA,
            options=MergeOptions(map_semantics="union"),
        ).graph,
        rounds=1, iterations=1,
    )
    leaked = merged.map_operator.attribute_set() - {a.lower() for a in POLICY_ATTRS}

    print_header("Ablation A3 — map-merge semantics")
    print(f"  policy projection : {sorted(a.lower() for a in POLICY_ATTRS)}")
    print(f"  user asks for     : {sorted(a.lower() for a in SNEAKY_USER_ATTRS)}")
    print(f"  union merge leaks : {sorted(leaked)}  ← the Section 3.1 text, verbatim")
    assert leaked == {"temperature"}

    # The leak is observable in actual data: temperature values flow out.
    instance = merged.instantiate(WEATHER_SCHEMA)
    outputs = instance.process_many(WeatherSource(seed=3).tuples(5))
    assert all("temperature" in t.schema.attribute_names for t in outputs)


def test_intersection_semantics_never_widens(benchmark):
    policy, user = graphs()
    merged = benchmark.pedantic(
        lambda: merge_query_graphs(policy, user, schema=WEATHER_SCHEMA).graph,
        rounds=1, iterations=1,
    )
    merged_set = merged.map_operator.attribute_set()
    print(f"  intersection merge: {sorted(merged_set)}  ← safe default")
    assert merged_set <= {a.lower() for a in POLICY_ATTRS}
    assert "temperature" not in merged_set


@pytest.mark.parametrize("semantics", ["intersection", "union"])
def test_map_merge_cost(benchmark, semantics):
    policy, user = graphs()
    options = MergeOptions(map_semantics=semantics)
    benchmark(
        lambda: merge_query_graphs(
            policy, user, schema=WEATHER_SCHEMA, options=options
        )
    )
