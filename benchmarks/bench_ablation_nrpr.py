"""Ablation A1 — cost of the NR/PR filter check vs expression size.

Section 3.5 bounds the filter check by O(k·n²): k conjunctions in the
DNF, n simple expressions per conjunction.  This bench measures the real
check on synthesised conditions of growing width (n) and disjunct count
(k) and verifies the quadratic-in-n / linear-in-k growth empirically.
"""

import random

from benchmarks.conftest import print_header
from repro.core.warnings_check import check_filter_merge
from repro.expr.ast import AndExpression, Operator, OrExpression, SimpleExpression
from repro.streams.operators.filter import FilterOperator


def conjunction(rng, width, attrs):
    literals = tuple(
        SimpleExpression(
            rng.choice(attrs),
            rng.choice((Operator.GT, Operator.LT, Operator.GE, Operator.LE)),
            rng.randint(-50, 50),
        )
        for _ in range(width)
    )
    return literals[0] if width == 1 else AndExpression(literals)


def condition(rng, disjuncts, width, attrs):
    parts = tuple(conjunction(rng, width, attrs) for _ in range(disjuncts))
    return parts[0] if disjuncts == 1 else OrExpression(parts)


def make_pair(disjuncts, width, seed=7):
    """A (policy, user) filter pair; distinct attrs avoid trivial NR."""
    rng = random.Random(seed)
    attrs = [f"a{i}" for i in range(max(4, width))]
    policy = FilterOperator(condition(rng, disjuncts, width, attrs))
    user = FilterOperator(condition(rng, disjuncts, width, attrs))
    return policy, user


def check_many(pairs):
    for policy, user in pairs:
        check_filter_merge(policy, user)


def test_nrpr_check_cost_base(benchmark):
    pairs = [make_pair(2, 3, seed=s) for s in range(50)]
    benchmark(check_many, pairs)


def test_nrpr_cost_scaling(benchmark):
    import time

    benchmark.pedantic(
        check_many, args=([make_pair(2, 3, seed=s) for s in range(10)],),
        rounds=1, iterations=1,
    )

    print_header("Ablation A1 — NR/PR filter-check cost (paper bound: O(k·n²))")
    print(f"  {'k(disjuncts)':>13s} {'n(width)':>9s} {'time/check':>12s}")
    timings = {}
    for disjuncts, width in [(1, 2), (1, 4), (1, 8), (1, 16),
                             (2, 4), (4, 4), (8, 4), (16, 4)]:
        pairs = [make_pair(disjuncts, width, seed=s) for s in range(20)]
        started = time.perf_counter()
        repeats = 5
        for _ in range(repeats):
            check_many(pairs)
        per_check = (time.perf_counter() - started) / (repeats * len(pairs))
        timings[(disjuncts, width)] = per_check
        print(f"  {disjuncts:>13d} {width:>9d} {per_check * 1e6:>9.1f} µs")

    # Quadratic-ish growth in n: width 16 costs clearly more than width 2
    # but far less than a cubic blow-up would produce.
    assert timings[(1, 16)] > timings[(1, 2)]
    assert timings[(1, 16)] < timings[(1, 2)] * 400
    # The merged DNF has k_policy × k_user conjunctions, so doubling k on
    # both sides roughly quadruples cost — still tractable at k=16.
    assert timings[(16, 4)] < 0.5, "check must stay well under a second"
