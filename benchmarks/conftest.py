"""Shared fixtures and helpers for the evaluation benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
Section 4.2 (or an ablation of a design choice DESIGN.md calls out).
Latency figures are *virtual-clock* seconds from the calibrated network
simulation — the real computation (PDP, merging, NR/PR, SQL generation,
engine registration) is executed and measured for real, wire time is
sampled (see DESIGN.md's substitution table).

Conventions: heavy end-to-end replays use ``benchmark.pedantic(...,
rounds=1)`` — the workload itself is the unit of measurement; micro
benchmarks (NR/PR checks, merging, engine throughput) use the default
calibration so pytest-benchmark reports stable per-operation times.
"""

from __future__ import annotations

import pytest

from repro.workload.generator import TABLE3, WorkloadGenerator
from repro.workload.runner import ExperimentRunner


def make_runner(seed=2012, n_requests=TABLE3.n_requests,
                n_policies=TABLE3.n_policies, **runner_kwargs):
    """A fresh generator+runner pair at the requested workload scale."""
    generator = WorkloadGenerator(seed=seed)
    generator.parameters = generator.parameters._replace(
        n_requests=n_requests, n_policies=n_policies
    )
    runner = ExperimentRunner(seed=seed, generator=generator, **runner_kwargs)
    return runner, generator


@pytest.fixture(scope="session")
def table3_items():
    """The full Table 3 workload (1500 requests over 1000 policies)."""
    generator = WorkloadGenerator(seed=2012)
    return generator, generator.generate()


def print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
