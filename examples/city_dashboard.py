#!/usr/bin/env python3
"""A multi-tenant "intelligent city" dashboard over one cloud deployment.

The paper's motivating vision: many data owners (weather stations, GPS
fleets), many consumers (transport authority, a health agency, the
public), each with a *different* granularity of access to the same
underlying streams — all enforced by per-subject XACML policies on one
cloud, with handle caching at the proxy.

Subjects and their views of the weather stream:

- ``LTA``     — heavy-rain aggregate windows (the warning system);
- ``health``  — hourly temperature/humidity aggregates (flu tracking);
- ``public``  — coarse 20-tuple windows of temperature only;
- the GPS stream is shared with ``LTA`` as positions of its own fleet
  (filter on deviceid), nobody else.

Run with::

    python examples/city_dashboard.py
"""

from repro import AccessDeniedError, Request, stream_policy
from repro.framework.client import ClientInterface
from repro.framework.network import SimulatedNetwork
from repro.framework.proxy import Proxy
from repro.framework.server import DataServer
from repro.streams import QueryGraph, StreamEngine
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import GPS_SCHEMA, WEATHER_SCHEMA
from repro.streams.sources import GpsSource, WeatherSource


def tuple_window(size, step, *specs):
    return AggregateOperator(
        WindowSpec(WindowType.TUPLE, size, step),
        [AggregationSpec.parse(s) for s in specs],
    )


def build_policies():
    lta_weather = QueryGraph("weather")
    lta_weather.append(FilterOperator("rainrate > 5"))
    lta_weather.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
    lta_weather.append(
        tuple_window(5, 2, "samplingtime:lastval", "rainrate:avg", "windspeed:max")
    )

    health_weather = QueryGraph("weather")
    health_weather.append(
        MapOperator(["samplingtime", "temperature", "humidity"])
    )
    health_weather.append(
        tuple_window(
            120, 120, "samplingtime:lastval", "temperature:avg", "humidity:avg"
        )
    )

    public_weather = QueryGraph("weather")
    public_weather.append(MapOperator(["samplingtime", "temperature"]))
    public_weather.append(
        tuple_window(20, 20, "samplingtime:lastval", "temperature:avg")
    )

    lta_gps = QueryGraph("gps")
    lta_gps.append(FilterOperator("deviceid = 'device-00'"))
    lta_gps.append(MapOperator(["samplingtime", "deviceid", "latitude", "longitude", "speed"]))

    return [
        stream_policy("city:weather:lta", "weather", lta_weather, subject="LTA"),
        stream_policy("city:weather:health", "weather", health_weather, subject="health"),
        stream_policy("city:weather:public", "weather", public_weather, subject="public"),
        stream_policy("city:gps:lta", "gps", lta_gps, subject="LTA"),
    ]


def main():
    # -- deploy the cloud ----------------------------------------------------
    network = SimulatedNetwork()
    engine = StreamEngine(host="cloud.city.sg")
    engine.register_input_stream("weather", WEATHER_SCHEMA)
    engine.register_input_stream("gps", GPS_SCHEMA)
    # Single-access enforcement is relaxed so tenants can refresh their
    # dashboards (re-request the same stream); see examples/privacy_attack.py
    # for the guard in action.
    server = DataServer(
        network, engine=engine, allow_partial_results=True,
        enforce_single_access=False,
    )
    proxy = Proxy(server, network)
    client = ClientInterface(proxy, network)

    total_load = sum(server.load_policy(policy) for policy in build_policies())
    print(f"loaded 4 policies in {total_load:.2f} simulated seconds")

    # -- each tenant requests its view ---------------------------------------
    handles = {}
    for subject, stream in (
        ("LTA", "weather"), ("health", "weather"),
        ("public", "weather"), ("LTA", "gps"),
    ):
        response, trace = client.request_stream(Request.simple(subject, stream))
        handles[(subject, stream)] = response.handle_uri
        print(
            f"{subject:>7s} ← {stream:<8s} handle={response.handle_uri}  "
            f"({trace.total:.3f}s simulated)"
        )

    # access control is subject-specific:
    try:
        client_response, _ = client.request_stream(Request.simple("public", "gps"))
        assert not client_response.ok
        print(f" public ← gps      DENIED ({client_response.error_kind})")
    except AccessDeniedError as error:
        print(f" public ← gps      DENIED ({error})")

    # -- data flows -------------------------------------------------------------
    engine.push_many("weather", WeatherSource(seed=3).records(800))
    engine.push_many("gps", GpsSource(seed=11).records(400))

    print("\n=== What each tenant sees ===")
    lta = engine.read(handles[("LTA", "weather")])
    print(f"LTA warning system: {len(lta)} heavy-rain windows; "
          f"first: avg rainrate {lta[0]['avgrainrate']:.1f} mm/h" if lta
          else "LTA warning system: no heavy rain in this period")
    health = engine.read(handles[("health", "weather")])
    for window in health:
        print(
            f"health agency: hourly avg temperature {window['avgtemperature']:.1f}°C, "
            f"humidity {window['avghumidity']:.0f}%"
        )
    public = engine.read(handles[("public", "weather")])
    print(f"public dashboard: {len(public)} coarse temperature windows")
    fleet = engine.read(handles[("LTA", "gps")])
    print(f"LTA fleet view: {len(fleet)} positions of device-00 only")
    others = {t["deviceid"] for t in fleet}
    assert others == {"device-00"}

    # -- the proxy cache makes repeated dashboard loads cheap -----------------
    print("\n=== Proxy cache effect on a dashboard refresh ===")
    proxy.invalidate()  # start from a cold cache for a fair comparison
    _, cold = client.request_stream(Request.simple("health", "weather"))
    _, warm = client.request_stream(Request.simple("health", "weather"))
    print(f"first load:  {cold.total:.3f}s simulated (cache_hit={cold.cache_hit})")
    print(f"refresh:     {warm.total:.3f}s simulated (cache_hit={warm.cache_hit})")
    print(f"speedup:     {cold.total / warm.total:.1f}x")


if __name__ == "__main__":
    main()
