#!/usr/bin/env python3
"""Accountability: auditing every access-control action (future work, §6).

The paper's primary next challenge is "relaxing the trusted cloud model
to incorporate more accountability mechanisms".  This example wraps the
XACML+ instance in a hash-chained audit log and organises the agency's
policies in an XACML PolicySet (organisation-wide deny-overrides around
per-consumer permits), then shows the data owner verifying exactly what
the cloud did — and detecting a forged log.

Run with::

    python examples/audited_sharing.py
"""

from repro import Request, UserQuery, stream_policy
from repro.core import AuditedXacmlPlus, XacmlPlusInstance
from repro.core.audit import AuditLog
from repro.errors import AccessDeniedError, EmptyResultWarning
from repro.streams import QueryGraph
from repro.streams.operators import FilterOperator, MapOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.xacml import PolicySet, Request as XacmlRequest
from repro.xacml.policy import Policy, Rule, Target
from repro.xacml.response import Decision, Effect


def main():
    instance = XacmlPlusInstance()
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
    audited = AuditedXacmlPlus(instance)

    # -- a PolicySet: organisation-wide deny around per-consumer permits --
    blacklist = Policy(
        "nea:blacklist",
        target=Target.for_ids(subject="banned-corp"),
        rules=[Rule("deny-banned", Effect.DENY)],
        description="organisation-wide blacklist",
    )
    lta_graph = QueryGraph("weather")
    lta_graph.append(FilterOperator("rainrate > 5"))
    lta_graph.append(MapOperator(["samplingtime", "rainrate"]))
    lta_policy = stream_policy("nea:weather:lta", "weather", lta_graph, subject="LTA")
    agency_set = PolicySet(
        "nea:policies",
        children=[blacklist, lta_policy],
        policy_combining="deny-overrides",
        description="NEA's policy set for the weather stream",
    )
    # The PDP stores leaf policies; the set is the owner's authoring view.
    print("=== PolicySet evaluation (authoring view) ===")
    for subject in ("LTA", "banned-corp", "stranger"):
        decision, leaf = agency_set.evaluate_with_policy(
            XacmlRequest.simple(subject, "weather")
        )
        leaf_id = leaf.policy_id if leaf else "-"
        print(f"  {subject:>12s}: {decision.value:<14s} (deciding policy: {leaf_id})")
    assert agency_set.evaluate(
        XacmlRequest.simple("banned-corp", "weather")
    ) is Decision.DENY

    for policy in agency_set.flatten():
        if policy.rules[0].effect is Effect.PERMIT:
            audited.load_policy(policy)

    # -- a day of audited activity ------------------------------------------
    print("\n=== Audited activity ===")
    result = audited.request_stream(Request.simple("LTA", "weather"))
    print(f"LTA granted {result.handle.uri}")
    try:
        audited.request_stream(Request.simple("stranger", "weather"))
    except AccessDeniedError:
        print("stranger denied")
    try:
        audited.request_stream(
            Request.simple("LTA", "weather"),
        )
    except Exception as error:
        print(f"LTA second concurrent request: {type(error).__name__}")
    audited.release_stream(result.handle)
    try:
        audited.request_stream(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate < 2"),
        )
    except EmptyResultWarning:
        print("LTA's conflicting refinement rejected with NR")
    audited.remove_policy("nea:weather:lta")

    # -- the data owner inspects the log ----------------------------------------
    log = audited.log
    print(f"\n=== Audit log: {len(log)} entries, chain valid: {log.verify_chain()} ===")
    for entry in log:
        extras = {k: v for k, v in entry.detail.items() if k != "streamsql"}
        print(f"  #{entry.sequence:<2d} {entry.kind:<15s} "
              f"subject={entry.subject or '-':<10s} {extras}")

    # -- tampering is detectable --------------------------------------------------
    exported = log.export_json()
    forged = exported.replace('"Permit"', '"Deny"', 1)
    reloaded = AuditLog.import_json(forged)
    print(f"\nforged log verifies: {reloaded.verify_chain()}  "
          f"(original: {AuditLog.import_json(exported).verify_chain()})")


if __name__ == "__main__":
    main()
