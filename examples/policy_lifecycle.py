#!/usr/bin/env python3
"""Policy lifecycle and revocation (Section 3.3).

With bounded data, enforcement ends when the query returns.  With
streams, the user holds a *handle* to a standing query — so removing or
modifying a policy must immediately withdraw every query graph the
policy spawned, or revoked users keep drinking from the stream.

This script walks the full lifecycle: author a policy as XML, load it,
grant access, tighten the policy (update → revoke + re-grant), remove it
(revoke), and show the bookkeeping the query-graph manager maintains.

Run with::

    python examples/policy_lifecycle.py
"""

from repro import Request, XacmlPlusInstance, stream_policy
from repro.errors import PartialResultWarning, UnknownHandleError
from repro.streams import QueryGraph
from repro.streams.operators import FilterOperator, MapOperator
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource
from repro.xacml.xml_io import parse_policy_xml, policy_to_xml


def policy_version(threshold: float):
    graph = QueryGraph("weather")
    graph.append(FilterOperator(f"rainrate > {threshold}"))
    graph.append(MapOperator(["samplingtime", "rainrate"]))
    return stream_policy(
        "nea:weather:press", "weather", graph, subject="press",
        description=f"press may see rain above {threshold} mm/h",
    )


def main():
    instance = XacmlPlusInstance(allow_partial_results=True)
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)

    # -- author as XML, load from XML (the paper's workload file format) --
    xml_document = policy_to_xml(policy_version(threshold=5))
    print("=== Policy as shipped to the data server ===")
    print(xml_document)
    instance.load_policy(xml_document)

    # -- grant ------------------------------------------------------------
    result = instance.request_stream(Request.simple("press", "weather"))
    print(f"press holds {result.handle.uri}")
    manager = instance.graph_manager
    spawned = manager.for_handle(result.handle)
    print(
        f"manager records: policy={spawned.policy_id} subject={spawned.subject} "
        f"stream={spawned.stream}"
    )

    instance.engine.push_many("weather", WeatherSource(seed=3).records(150))
    before = len(instance.engine.read(result.handle))
    print(f"press has received {before} tuples under the v1 policy")

    # -- update: tighten the threshold — the old grant dies instantly ------
    print("\n=== NEA tightens the policy (update → immediate revocation) ===")
    instance.update_policy(policy_version(threshold=50))
    try:
        instance.engine.read(result.handle)
    except UnknownHandleError:
        print("the old handle is dead; the v1 query graph was withdrawn")
    print(f"revocations performed by the manager: {manager.revocations}")

    # -- the press re-requests and now sees only heavy rain ----------------
    result2 = instance.request_stream(Request.simple("press", "weather"))
    instance.engine.push_many("weather", WeatherSource(seed=5).records(150))
    tuples = instance.engine.read(result2.handle)
    assert all(t["rainrate"] > 50 for t in tuples)
    print(f"re-granted under v2: {len(tuples)} tuples, all with rainrate > 50")

    # -- removal ---------------------------------------------------------------
    print("\n=== NEA removes the policy entirely ===")
    instance.remove_policy("nea:weather:press")
    try:
        instance.engine.read(result2.handle)
    except UnknownHandleError:
        print("handle withdrawn; no standing query outlives its policy")
    from repro import AccessDeniedError

    try:
        instance.request_stream(Request.simple("press", "weather"))
    except AccessDeniedError:
        print("new requests are now denied — decision and enforcement agree")


if __name__ == "__main__":
    main()
