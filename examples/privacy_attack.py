#!/usr/bin/env python3
"""The Section 3.4 multi-window reconstruction attack, live.

A policy grants only *sum* aggregation over windows of size 3 advancing
by 2 — individual readings are supposed to stay hidden.  A user allowed
to hold several concurrent aggregation windows (sizes 3, 4 and 5) can
difference the aggregate streams and recover the raw stream from a3
onwards.  eXACML+ therefore permits "only a single access ... on a
particular data stream for one user at any time".

This script runs the attack against an unprotected instance (succeeds),
then against a protected one (blocked).

Run with::

    python examples/privacy_attack.py
"""

from repro import ConcurrentAccessError
from repro.core.attack import MultiWindowAttack

SECRET_READINGS = [23, 19, 31, 40, 12, 55, 8, 27, 33, 61,
                   17, 29, 44, 50, 9, 38, 21, 35, 47, 13,
                   26, 52, 18, 30, 41, 22, 36, 48, 11, 57]


def main():
    print("=== Attack on an instance WITHOUT the single-access guard ===")
    victim = MultiWindowAttack.build_victim_instance(
        enforce_single_access=False, base_size=3, step=2,
    )
    attack = MultiWindowAttack(victim, base_size=3, step=2)
    recovered = attack.run(SECRET_READINGS)
    print("policy only ever exposed sums over windows of 3 readings, yet:")
    hits = 0
    for index in sorted(recovered):
        actual = SECRET_READINGS[index]
        guessed = recovered[index]
        marker = "✓" if guessed == actual else "✗"
        hits += guessed == actual
        print(f"  a[{index:2d}] recovered as {guessed:5.0f}  (actual {actual:3d}) {marker}")
    print(f"{hits}/{len(recovered)} raw readings reconstructed exactly "
          f"(everything from a3 onward, as the paper proves).")

    print("\n=== Same attack WITH the single-access guard (the default) ===")
    protected = MultiWindowAttack.build_victim_instance(
        enforce_single_access=True, base_size=3, step=2,
    )
    guarded_attack = MultiWindowAttack(protected, base_size=3, step=2)
    try:
        guarded_attack.run(SECRET_READINGS)
    except ConcurrentAccessError as error:
        print(f"second concurrent window request rejected:\n  {error}")
    print("\nThe guard releases on handle release: sequential (non-")
    print("concurrent) re-requests remain possible, but simultaneous")
    print("differencing streams are not.")


if __name__ == "__main__":
    main()
