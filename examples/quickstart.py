#!/usr/bin/env python3
"""Quickstart: share a weather stream under a fine-grained policy.

Reproduces the paper's running example (Section 2.2): the National
Environmental Agency (NEA) publishes a real-time weather stream through
the cloud; the Land Transport Authority (LTA) may only see windowed
aggregates of (samplingtime, rainrate, windspeed) when it is raining
hard.

Run with::

    python examples/quickstart.py
"""

from repro import Request, UserQuery, XacmlPlusInstance, stream_policy
from repro.streams import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource
from repro.xacml.xml_io import policy_to_xml


def main():
    # -- 1. The cloud provider deploys an XACML+ instance with a stream ---
    instance = XacmlPlusInstance(allow_partial_results=True)
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)

    # -- 2. NEA (the data owner) writes the Example 1 policy --------------
    # Only samplingtime, rainrate and windspeed are visible; data comes in
    # windows of 5 tuples advancing by 2 (lastval / avg / max); and only
    # when rainrate > 5 mm/hour.
    policy_graph = QueryGraph("weather")
    policy_graph.append(FilterOperator("rainrate > 5"))
    policy_graph.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
    policy_graph.append(
        AggregateOperator(
            WindowSpec(WindowType.TUPLE, size=5, step=2),
            [
                AggregationSpec.parse("samplingtime:lastval"),
                AggregationSpec.parse("rainrate:avg"),
                AggregationSpec.parse("windspeed:max"),
            ],
        )
    )
    policy = stream_policy(
        "nea:weather:lta", "weather", policy_graph, subject="LTA",
        description="NEA weather sharing policy for LTA (paper Example 1)",
    )
    instance.load_policy(policy)
    print("=== XACML policy (obligations carry the query graph) ===")
    print(policy_to_xml(policy))

    # -- 3. LTA requests the stream ----------------------------------------
    result = instance.request_stream(Request.simple("LTA", "weather"))
    print("=== Stream handle returned to LTA ===")
    print(result.handle.uri)
    print()
    print("=== StreamSQL submitted to the DSMS ===")
    print(result.streamsql)

    # -- 4. Weather data flows; LTA reads its authorized view -------------
    source = WeatherSource(seed=3, interval_seconds=30.0)
    instance.engine.push_many("weather", source.records(400))
    outputs = instance.engine.read(result.handle)
    print(f"=== First 5 of {len(outputs)} windowed records visible to LTA ===")
    for tup in outputs[:5]:
        print(
            f"  t={tup['lastvalsamplingtime']:.0f}  "
            f"avg(rainrate)={tup['avgrainrate']:6.2f}  "
            f"max(windspeed)={tup['maxwindspeed']:5.2f}"
        )

    # -- 5. An unauthorized subject is denied ------------------------------
    from repro import AccessDeniedError

    try:
        instance.request_stream(Request.simple("acme-corp", "weather"))
    except AccessDeniedError as error:
        print(f"\nacme-corp is denied: {error}")

    # -- 6. NEA revokes the policy; LTA's standing query is withdrawn -----
    instance.remove_policy("nea:weather:lta")
    from repro.errors import UnknownHandleError

    try:
        instance.engine.read(result.handle)
    except UnknownHandleError:
        print("after policy removal, LTA's handle is dead (Section 3.3)")


if __name__ == "__main__":
    main()
