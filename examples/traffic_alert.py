#!/usr/bin/env python3
"""Customised user queries: the LTA traffic-warning refinement.

Section 3.1's scenario: LTA discovers only rain above 50 mm/h affects
traffic, and its warning system wants windows of 10 tuples instead of 5.
Rather than post-processing locally, LTA ships a customised query (the
paper's Figure 4(a) XML) with its request; the PEP merges it with the
policy graph — demonstrating filter simplification, aggregation-spec
intersection and the NR/PR warnings when the refinement conflicts with
policy.

Run with::

    python examples/traffic_alert.py
"""

from repro import (
    EmptyResultWarning,
    PartialResultWarning,
    Request,
    UserQuery,
    XacmlPlusInstance,
    stream_policy,
)
from repro.streams import QueryGraph
from repro.streams.operators import (
    AggregateOperator,
    AggregationSpec,
    FilterOperator,
    MapOperator,
    WindowSpec,
    WindowType,
)
from repro.streams.schema import WEATHER_SCHEMA
from repro.streams.sources import WeatherSource

#: LTA's customised query, exactly the paper's Figure 4(a).
USER_QUERY_XML = """
<UserQuery>
  <Stream name="weather" />
  <Filter>
    <FilterCondition> RainRate > 50 </FilterCondition>
  </Filter>
  <Map>
    <Attribute>RainRate</Attribute>
  </Map>
  <Aggregation>
    <WindowType>tuple</WindowType>
    <WindowSize>10</WindowSize>
    <WindowStep>2</WindowStep>
    <Attribute>avg(RainRate)</Attribute>
  </Aggregation>
</UserQuery>
"""


def build_instance():
    instance = XacmlPlusInstance(allow_partial_results=True)
    instance.engine.register_input_stream("weather", WEATHER_SCHEMA)
    graph = QueryGraph("weather")
    graph.append(FilterOperator("rainrate > 5"))
    graph.append(MapOperator(["samplingtime", "rainrate", "windspeed"]))
    graph.append(
        AggregateOperator(
            WindowSpec(WindowType.TUPLE, 5, 2),
            [
                AggregationSpec.parse("samplingtime:lastval"),
                AggregationSpec.parse("rainrate:avg"),
                AggregationSpec.parse("windspeed:max"),
            ],
        )
    )
    instance.load_policy(stream_policy("nea:weather:lta", "weather", graph, subject="LTA"))
    return instance


def main():
    instance = build_instance()

    # -- Merge the Figure 4(a) query with the Figure 1 policy -------------
    result = instance.request_stream(
        Request.simple("LTA", "weather"), USER_QUERY_XML
    )
    print("=== Merged StreamSQL (compare with the paper's Figure 4(b)) ===")
    print(result.streamsql)
    if result.warnings:
        print("warnings raised during merge:")
        for warning in result.warnings:
            print(f"  [{warning.verdict.name}] {warning.operator}: {warning.detail}")

    # -- Alerts fire only on heavy rain -------------------------------------
    instance.engine.push_many("weather", WeatherSource(seed=3).records(600))
    alerts = instance.engine.read(result.handle)
    print(f"\n{len(alerts)} heavy-rain windows reached the warning system:")
    for tup in alerts[:5]:
        print(f"  ALERT avg(rainrate)={tup['avgrainrate']:.1f} mm/h")
    instance.release_stream(result.handle)

    # -- A conflicting refinement triggers PR ------------------------------
    print("\n=== PR: user asks for lighter rain than policy exposes ===")
    try:
        instance.pep.allow_partial_results = False
        instance.request_stream(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate > 2"),
        )
    except PartialResultWarning as warning:
        print(f"PR warning: {warning}")
        for report in warning.conflicts:
            print(f"  {report.operator}: {report.detail}")

    # -- An impossible refinement triggers NR -------------------------------
    print("\n=== NR: user condition contradicts policy ===")
    try:
        instance.request_stream(
            Request.simple("LTA", "weather"),
            UserQuery("weather", filter_condition="rainrate < 2"),
        )
    except EmptyResultWarning as warning:
        print(f"NR warning: {warning}")

    # -- A finer window than policy allows is rejected too ------------------
    print("\n=== NR: finer-grained window than policy permits ===")
    try:
        instance.request_stream(
            Request.simple("LTA", "weather"),
            UserQuery(
                "weather",
                window=WindowSpec(WindowType.TUPLE, 3, 1),
                aggregations=["avg(rainrate)"],
            ),
        )
    except EmptyResultWarning as warning:
        print(f"blocked: {warning}")


if __name__ == "__main__":
    main()
